//! The stateful query-answering engine: a [`Catalog`] of registered views
//! with lazily-materialized, memoized extensions, and an [`Engine`] that
//! answers queries touching only those extensions — sequentially or in
//! concurrent batches. (Re-exported as `prxview::engine`; the TCP serving
//! layer in `pxv-server` wraps one shared `Engine` behind a socket.)
//!
//! This is the session-style surface of the library — the paper's
//! scenario (§1, §7) is a warehouse that materializes view extensions
//! *once* and then serves many queries from them. The free functions of
//! `pxv_rewrite::answer` re-materialize every extension per call; the
//! engine pays materialization once per `(document, view)` pair and
//! amortizes it across queries:
//!
//! ```
//! use pxv_engine::{Engine, QueryOptions};
//! use pxv_pxml::text::parse_pdocument;
//! use pxv_rewrite::View;
//! use pxv_tpq::parse::parse_pattern;
//!
//! let mut engine = Engine::new();
//! let doc = engine
//!     .add_document("hr", parse_pdocument("a[mux(0.4: b[c], 0.6: b)]").unwrap())
//!     .unwrap();
//! engine.register_view(View::new("bs", parse_pattern("a/b").unwrap())).unwrap();
//!
//! let q = parse_pattern("a/b[c]").unwrap();
//! let first = engine.answer(doc, &q).unwrap();
//! assert_eq!(first.stats.materializations, 1); // cold: materialize `bs`
//! let second = engine.answer(doc, &q).unwrap();
//! assert_eq!(second.stats.materializations, 0); // warm: cache hit only
//! assert_eq!(second.stats.cache_hits, 1);
//! assert_eq!(first.nodes, second.nodes);
//! ```
//!
//! Execution is *minimal*: a plan only ever touches the extensions of the
//! views it references ([`Plan::referenced_views`]) — a TP∩ plan over a
//! catalog of fifty views materializes two extensions if its parts use
//! two views.
//!
//! # Concurrency
//!
//! All query paths take `&self`: the catalog's extension cache is sharded
//! under interior mutability ([`RwLock`] shards keyed by a hash of the
//! `(document, view)` pair) and lifetime counters are atomics, so any
//! number of threads may answer queries against one engine concurrently.
//! [`Engine::answer_batch`] runs a slice of queries on a small
//! hand-rolled worker pool (scoped `std::thread`s pulling indices off an
//! atomic cursor). Materialization is *single-flight*: when two threads
//! race for the same cold extension, exactly one materializes while the
//! other blocks on the entry's [`OnceLock`] and then shares the result —
//! concurrent workloads never duplicate materialization work:
//!
//! ```
//! use pxv_engine::Engine;
//! use pxv_pxml::generators::personnel;
//! use pxv_rewrite::View;
//! use pxv_tpq::parse::parse_pattern;
//!
//! let mut engine = Engine::new();
//! let (pdoc, _) = personnel(10, 2, 7);
//! let doc = engine.add_document("hr", pdoc).unwrap();
//! engine
//!     .register_view(View::new(
//!         "bonuses",
//!         parse_pattern("IT-personnel//person/bonus").unwrap(),
//!     ))
//!     .unwrap();
//! let q = parse_pattern("IT-personnel//person/bonus[laptop]").unwrap();
//! let batch: Vec<_> = (0..16).map(|_| (doc, q.clone())).collect();
//! let answers = engine.answer_batch(&batch);
//! assert!(answers.iter().all(|a| a.is_ok()));
//! // Single-flight: 16 concurrent queries, one materialization.
//! assert_eq!(engine.stats().materializations, 1);
//! ```
//!
//! # Plan caching
//!
//! Planning is stateless over the registered views, so the engine caches
//! plans keyed by the query's canonical structural form
//! ([`pxv_tpq::TreePattern::canonical_key`]), the planning options, and
//! the *catalog epoch* — a counter bumped by [`Engine::register_view`]
//! and [`Engine::invalidate`], which also clear the cache. Two
//! structurally-equal queries plan once; hit/miss counters live in
//! [`EngineStats`]:
//!
//! ```
//! use pxv_engine::Engine;
//! use pxv_rewrite::View;
//! use pxv_tpq::parse::parse_pattern;
//!
//! let mut engine = Engine::new();
//! let doc = engine
//!     .add_document("d", pxv_pxml::text::parse_pdocument("a[b[c]]").unwrap())
//!     .unwrap();
//! engine.register_view(View::new("bs", parse_pattern("a/b").unwrap())).unwrap();
//! let q = parse_pattern("a/b[c]").unwrap();
//! engine.answer(doc, &q).unwrap();
//! engine.answer(doc, &q).unwrap();
//! assert_eq!(engine.stats().plan_cache_misses, 1); // planned once
//! assert_eq!(engine.stats().plan_cache_hits, 1);   // reused once
//! ```

#![deny(missing_docs)]

use pxv_obs::profile::QueryProfile;
use pxv_obs::ring::Ring;
use pxv_pxml::{NodeId, PDocument};
use pxv_rewrite::answer::{execute_tpi, plan_checked};
use pxv_rewrite::fr_tp::answer_tp;
use pxv_rewrite::view::ProbExtension;
// Re-exported so downstream layers (e.g. the TCP server) can register
// views and apply document edits without depending on `pxv-rewrite` /
// `pxv-pxml` directly.
pub use pxv_pxml::{Edit, EditEffect, EditError};
pub use pxv_rewrite::{DeltaOutcome, View};
use pxv_tpq::TreePattern;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

// Re-exported so callers can drive [`Engine::advise`] without depending
// on `pxv-advisor` directly.
pub use pxv_advisor::{AdviseOptions, AdvisorReport, CandidateReport, WorkloadQuery};
pub use pxv_rewrite::answer::{Plan, PlanError, PlanPreference, DEFAULT_INTERLEAVING_LIMIT};
pub use pxv_store::{ExtensionEntry, Snapshot, StoreError};

/// Number of cache shards in a [`Catalog`] (power of two). Sixteen shards
/// keep contention negligible for worker pools up to ~16 threads while the
/// per-shard maps stay dense.
pub const CATALOG_SHARDS: usize = 16;

/// Handle to a document registered with an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(usize);

impl DocId {
    /// Position of the document in the engine's load order (also the
    /// `doc` index space of snapshot sections and
    /// [`EngineError::Section`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a view registered with a [`Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(usize);

impl ViewId {
    /// Position of the view in [`Catalog::views`] (also the index space
    /// of [`Plan::referenced_views`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors reported by the engine (typed replacement for the `Option` /
/// `String` signaling of the pre-engine free functions).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A view with this name is already registered.
    DuplicateView(String),
    /// A document with this name is already registered.
    DuplicateDocument(String),
    /// The [`DocId`] does not belong to this engine.
    UnknownDocument(DocId),
    /// The document failed `PDocument::validate`.
    InvalidDocument(String),
    /// An [`Edit`] was rejected by structural validation
    /// ([`Engine::apply_edits`] mutates nothing when it reports this).
    Edit(EditError),
    /// No probabilistic rewriting exists and direct fallback is disabled.
    Plan(PlanError),
    /// A lazily restored extension section failed to decode or validate
    /// when a query first probed it (corrupt bytes, a bad checksum, or a
    /// document mismatch). Other sections keep serving; re-probing the
    /// damaged one reports this error again.
    Section {
        /// Document index of the failing section.
        doc: usize,
        /// View index of the failing section.
        view: usize,
        /// The underlying store-level failure.
        what: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateView(name) => write!(f, "view `{name}` already registered"),
            EngineError::DuplicateDocument(name) => {
                write!(f, "document `{name}` already registered")
            }
            EngineError::UnknownDocument(id) => write!(f, "unknown document id {:?}", id),
            EngineError::InvalidDocument(why) => write!(f, "invalid p-document: {why}"),
            EngineError::Edit(e) => write!(f, "edit rejected: {e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
            EngineError::Section { doc, view, what } => {
                write!(f, "lazy extension section (doc {doc}, view {view}): {what}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> EngineError {
        EngineError::Plan(e)
    }
}

impl From<EditError> for EngineError {
    fn from(e: EditError) -> EngineError {
        EngineError::Edit(e)
    }
}

/// What to do when no probabilistic rewriting over the catalog exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fallback {
    /// Report [`EngineError::Plan`] — the query is only answered if it can
    /// be answered from view extensions alone. The default: it keeps the
    /// "touch only materialized data" guarantee observable.
    #[default]
    Forbid,
    /// Evaluate directly over the original p-document (the answer's
    /// `plan` is `None` and no extension is touched).
    Direct,
}

/// Per-query knobs, built fluently:
///
/// ```
/// use pxv_engine::{Fallback, PlanPreference, QueryOptions};
/// let opts = QueryOptions::new()
///     .interleaving_limit(50_000)
///     .plan_preference(PlanPreference::PreferTpi)
///     .fallback(Fallback::Direct);
/// assert_eq!(opts.get_interleaving_limit(), 50_000);
/// ```
#[derive(Clone, Debug)]
pub struct QueryOptions {
    interleaving_limit: usize,
    preference: PlanPreference,
    fallback: Fallback,
    profile: bool,
    trace: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            interleaving_limit: DEFAULT_INTERLEAVING_LIMIT,
            preference: PlanPreference::default(),
            fallback: Fallback::default(),
            profile: false,
            trace: false,
        }
    }
}

impl QueryOptions {
    /// Options with all defaults ([`DEFAULT_INTERLEAVING_LIMIT`],
    /// [`PlanPreference::PreferTp`], [`Fallback::Forbid`]).
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Bounds TPIrewrite's interleaving enumeration during TP∩
    /// equivalence tests.
    pub fn interleaving_limit(mut self, limit: usize) -> QueryOptions {
        self.interleaving_limit = limit;
        self
    }

    /// Which plan shapes to consider, in which order.
    pub fn plan_preference(mut self, preference: PlanPreference) -> QueryOptions {
        self.preference = preference;
        self
    }

    /// Behavior when no probabilistic rewriting exists.
    pub fn fallback(mut self, fallback: Fallback) -> QueryOptions {
        self.fallback = fallback;
        self
    }

    /// Whether to time each answering stage and attach a
    /// [`QueryProfile`] to the [`Answer`]. Off by default: the disabled
    /// path reads no clocks and leaves answers bit-identical to an
    /// uninstrumented run.
    pub fn profile(mut self, profile: bool) -> QueryOptions {
        self.profile = profile;
        self
    }

    /// The configured interleaving limit.
    pub fn get_interleaving_limit(&self) -> usize {
        self.interleaving_limit
    }

    /// The configured plan preference.
    pub fn get_plan_preference(&self) -> PlanPreference {
        self.preference
    }

    /// The configured fallback policy.
    pub fn get_fallback(&self) -> Fallback {
        self.fallback
    }

    /// Whether stage profiling is enabled.
    pub fn get_profile(&self) -> bool {
        self.profile
    }

    /// Whether to capture the query's causal span tree and return it
    /// with the answer. The engine itself only carries the flag — span
    /// capture is driven by the ambient
    /// [`pxv_obs::trace::TraceContext`] the caller (typically the
    /// server) installs around the query. Off by default, and like
    /// profiling the disabled path reads no clocks and leaves answers
    /// bit-identical.
    pub fn trace(mut self, trace: bool) -> QueryOptions {
        self.trace = trace;
        self
    }

    /// Whether span-tree capture was requested.
    pub fn get_trace(&self) -> bool {
        self.trace
    }
}

/// Counters describing how one query was executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct extensions the plan read (0 for direct evaluation).
    pub extensions_touched: usize,
    /// How many of those were served from the catalog's cache (including
    /// single-flight waits on a materialization another query started).
    pub cache_hits: usize,
    /// How many this query materialized itself
    /// (`extensions_touched = cache_hits + materializations`).
    pub materializations: usize,
    /// Candidate answer nodes considered before probability filtering.
    pub candidates: usize,
}

/// The result of [`Engine::answer`]: answers, the route taken, and
/// per-query execution stats.
#[derive(Clone, Debug)]
pub struct Answer {
    /// `(node, probability)` pairs with positive probability, sorted by
    /// node id.
    pub nodes: Vec<(NodeId, f64)>,
    /// The chosen rewriting; `None` when the query was answered by direct
    /// evaluation (fallback or [`Engine::answer_direct`]).
    pub plan: Option<Plan>,
    /// Human-readable description of the route (plan shape and views).
    pub description: String,
    /// Execution counters.
    pub stats: QueryStats,
    /// Stage timing breakdown, present iff the query ran with
    /// [`QueryOptions::profile`]`(true)`.
    pub profile: Option<QueryProfile>,
}

impl Answer {
    /// Whether this answer came from view extensions (a plan) rather than
    /// direct evaluation.
    pub fn from_views(&self) -> bool {
        self.plan.is_some()
    }
}

/// Lifetime counters for an [`Engine`] (monotone; never reset — per-document
/// cache counters that *are* reset by invalidation live in [`DocStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered (including direct fallbacks).
    pub queries: u64,
    /// Queries answered through a single-view TP plan.
    pub plans_tp: u64,
    /// Queries answered through a TP∩ plan.
    pub plans_tpi: u64,
    /// Queries answered by direct evaluation.
    pub direct: u64,
    /// Extensions materialized since the engine was created.
    pub materializations: u64,
    /// Extension reads served from cache.
    pub cache_hits: u64,
    /// Cache invalidations ([`Engine::invalidate`] /
    /// [`Engine::replace_document`]) that evicted at least one extension.
    pub invalidations: u64,
    /// Plans (or typed plan failures) served from the plan cache.
    pub plan_cache_hits: u64,
    /// Queries whose plan had to be computed (first sighting of a
    /// canonical query under the current catalog epoch and options).
    pub plan_cache_misses: u64,
    /// Document edits applied through [`Engine::apply_edits`].
    pub edits_applied: u64,
    /// Per-(edit, cached extension) maintenance steps serviced by the
    /// incremental delta path (stored probabilities reused where the
    /// edit's scope test allowed).
    pub deltas_applied: u64,
    /// Maintenance steps that fell back to full rematerialization (the
    /// edit touched a region the view could not localize).
    pub delta_fallbacks: u64,
    /// Current bytes held by the extension cache (a gauge, not a
    /// monotone counter: sampled from the catalog at snapshot time).
    pub cache_bytes: u64,
    /// Extensions evicted by byte-budget enforcement (invalidations and
    /// update-path replacements are counted separately).
    pub evictions: u64,
    /// Freshly materialized extensions the budget refused to admit (the
    /// querying thread still got its answer from the private handle; the
    /// extension just never entered the shared cache).
    pub admission_rejects: u64,
    /// Lazily restored snapshot sections decoded on first probe (each
    /// counts once; subsequent probes of the section are cache hits).
    pub sections_faulted: u64,
    /// Total nanoseconds spent decoding lazily faulted sections.
    pub lazy_decode_ns: u64,
}

/// Per-document cache counters. Unlike [`EngineStats`] these describe the
/// *current* cache generation: [`Engine::invalidate`] resets them along
/// with the document's cached extensions, so a warm-looking document never
/// carries counters from extensions that no longer exist.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DocStats {
    /// Extensions materialized for this document since its last
    /// invalidation (or registration).
    pub materializations: u64,
    /// Cache hits served for this document since its last invalidation.
    pub cache_hits: u64,
}

/// Interior-mutability counterparts of the public stats structs, so every
/// query path can take `&self`.
#[derive(Debug, Default)]
struct AtomicEngineStats {
    queries: AtomicU64,
    plans_tp: AtomicU64,
    plans_tpi: AtomicU64,
    direct: AtomicU64,
    materializations: AtomicU64,
    cache_hits: AtomicU64,
    invalidations: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    edits_applied: AtomicU64,
    deltas_applied: AtomicU64,
    delta_fallbacks: AtomicU64,
}

impl AtomicEngineStats {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            queries: self.queries.load(Ordering::Relaxed),
            plans_tp: self.plans_tp.load(Ordering::Relaxed),
            plans_tpi: self.plans_tpi.load(Ordering::Relaxed),
            direct: self.direct.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            edits_applied: self.edits_applied.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            delta_fallbacks: self.delta_fallbacks.load(Ordering::Relaxed),
            // Budget and lazy-restore counters live in the catalog;
            // Engine::stats() fills them in after taking this snapshot.
            cache_bytes: 0,
            evictions: 0,
            admission_rejects: 0,
            sections_faulted: 0,
            lazy_decode_ns: 0,
        }
    }

    fn restore(snapshot: EngineStats) -> AtomicEngineStats {
        AtomicEngineStats {
            queries: AtomicU64::new(snapshot.queries),
            plans_tp: AtomicU64::new(snapshot.plans_tp),
            plans_tpi: AtomicU64::new(snapshot.plans_tpi),
            direct: AtomicU64::new(snapshot.direct),
            materializations: AtomicU64::new(snapshot.materializations),
            cache_hits: AtomicU64::new(snapshot.cache_hits),
            invalidations: AtomicU64::new(snapshot.invalidations),
            plan_cache_hits: AtomicU64::new(snapshot.plan_cache_hits),
            plan_cache_misses: AtomicU64::new(snapshot.plan_cache_misses),
            edits_applied: AtomicU64::new(snapshot.edits_applied),
            deltas_applied: AtomicU64::new(snapshot.deltas_applied),
            delta_fallbacks: AtomicU64::new(snapshot.delta_fallbacks),
        }
    }
}

#[derive(Debug, Default)]
struct AtomicDocStats {
    materializations: AtomicU64,
    cache_hits: AtomicU64,
}

impl AtomicDocStats {
    fn snapshot(&self) -> DocStats {
        DocStats {
            materializations: self.materializations.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.materializations.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
    }
}

/// One cache entry. The outer `Arc` lets a reader leave the shard lock
/// before touching the `OnceLock`; the `OnceLock` provides single-flight
/// materialization (`get_or_init` runs the closure in exactly one thread,
/// everyone else blocks and shares the value); the inner `Arc` is the
/// immutable extension handed to plan execution.
type ExtensionSlot = Arc<OnceLock<Arc<ProbExtension>>>;

/// Byte-accounting state of one slot (see [`SlotMeta::acct`]): the
/// materialization has not charged the gauge yet.
const ACCT_PENDING: u8 = 0;
/// The slot's bytes are counted in [`Catalog::cache_bytes`].
const ACCT_CHARGED: u8 = 1;
/// The slot left the cache (evicted, invalidated, replaced, or rejected);
/// its bytes are not (or no longer) counted.
const ACCT_RETIRED: u8 = 2;

/// Cost/benefit bookkeeping of one cache slot. `bytes` and
/// `rebuild_nanos` are written once when the materialization completes;
/// `hits` counts every read served from the completed slot (the benefit
/// side of the eviction score); `acct` is a tiny state machine that makes
/// the byte gauge exact under races between a completing materialization
/// and a concurrent eviction/invalidation of the same key — exactly one
/// side wins the `PENDING → {CHARGED, RETIRED}` transition, so bytes are
/// never double-charged or double-released.
#[derive(Debug, Default)]
struct SlotMeta {
    bytes: AtomicU64,
    rebuild_nanos: AtomicU64,
    hits: AtomicU64,
    acct: AtomicU8,
}

impl SlotMeta {
    /// The eviction score: benefit (hits so far, plus one so a fresh
    /// entry is not instantly worthless) times cost (observed rebuild
    /// time) per byte held. Higher is more worth keeping.
    fn score(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed);
        let nanos = self.rebuild_nanos.load(Ordering::Relaxed).max(1);
        let bytes = self.bytes.load(Ordering::Relaxed).max(1);
        (hits + 1) as f64 * nanos as f64 / bytes as f64
    }
}

/// An undecoded snapshot section backing a lazily restored cache entry:
/// the byte range to fault in, the view to decode it against, and a
/// single-flight mutex so two racing queries decode the section once.
/// (A `OnceLock` closure cannot fail, and a corrupt section must report
/// a typed error on *every* probe — hence a mutex, not `get_or_init`.)
#[derive(Debug)]
struct PendingBody {
    section: pxv_store::ExtSectionRef,
    view: View,
    flight: Mutex<()>,
}

/// Map value of the sharded cache: the single-flight slot plus its
/// cost/benefit metadata, and — for lazily restored entries — the
/// snapshot section the slot decodes from on first probe.
#[derive(Clone, Debug, Default)]
struct CacheEntry {
    slot: ExtensionSlot,
    meta: Arc<SlotMeta>,
    pending: Option<Arc<PendingBody>>,
}

/// How [`Catalog::extension`] satisfied a probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Probe {
    /// Served from the completed cache (including single-flight waits).
    Hit,
    /// This probe materialized the extension from the document.
    Materialized,
    /// This probe decoded a pending snapshot section (lazy restore).
    Faulted,
}

/// One entry of the catalog's eviction log: which `(document, view)`
/// extension was dropped by budget enforcement and the score components
/// that condemned it.
#[derive(Clone, Debug)]
pub struct EvictionRecord {
    /// Document index of the evicted extension.
    pub doc: usize,
    /// View index of the evicted extension.
    pub view: usize,
    /// Heap bytes the eviction released.
    pub bytes: u64,
    /// Cache hits the entry had served.
    pub hits: u64,
    /// Observed cost of the entry's materialization, in nanoseconds.
    pub rebuild_nanos: u64,
    /// The cost/benefit score at eviction time (lowest in cache).
    pub score: f64,
    /// True when the victim was the entry whose own admission triggered
    /// enforcement — an admission reject rather than an eviction.
    pub admission_reject: bool,
}

/// Bound on the in-memory eviction log (oldest records are dropped).
pub const EVICTION_LOG_CAPACITY: usize = 256;

/// A named set of views plus the memoized extensions materialized from
/// them, keyed per document and sharded for concurrent access.
///
/// The cache is **byte-budgeted**: every completed slot is charged its
/// [`ProbExtension::heap_bytes`] footprint against a configurable budget
/// (default unbounded), and enforcement evicts the lowest cost/benefit
/// score — `(hits + 1) × rebuild_nanos / bytes` — until the gauge fits.
/// A freshly materialized extension that is itself the lowest-value slot
/// is *rejected* instead of admitted (the querying thread keeps its
/// private handle; the shared cache stays within budget).
#[derive(Debug)]
pub struct Catalog {
    views: Vec<View>,
    by_name: HashMap<String, usize>,
    /// `(document, view) →` materialized extension, split across
    /// [`CATALOG_SHARDS`] locks by key hash so concurrent queries touching
    /// different extensions never serialize on one mutex.
    shards: Vec<RwLock<HashMap<(usize, usize), CacheEntry>>>,
    /// Byte budget; `u64::MAX` means unbounded.
    budget: AtomicU64,
    /// Bytes currently charged by completed, admitted slots.
    bytes: AtomicU64,
    /// Budget-driven evictions (lifetime).
    evictions: AtomicU64,
    /// Admissions refused at materialization time (lifetime).
    admission_rejects: AtomicU64,
    /// Most recent eviction/rejection records, newest last (bounded ring:
    /// overflow drops the oldest record and is counted).
    eviction_log: Mutex<Ring<EvictionRecord>>,
    /// Pending snapshot sections decoded on first probe (lifetime).
    sections_faulted: AtomicU64,
    /// Nanoseconds spent decoding faulted sections (lifetime).
    lazy_decode_nanos: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog {
            views: Vec::new(),
            by_name: HashMap::new(),
            shards: (0..CATALOG_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            budget: AtomicU64::new(u64::MAX),
            bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            eviction_log: Mutex::new(Ring::new(EVICTION_LOG_CAPACITY)),
            sections_faulted: AtomicU64::new(0),
            lazy_decode_nanos: AtomicU64::new(0),
        }
    }
}

impl Clone for Catalog {
    /// Clones the views, the *completed* cache entries (extensions are
    /// immutable, so clones share them through `Arc`), and any **pending**
    /// lazily restored sections (the clone shares the slot and the
    /// encoded body, so a section decoded in either generation is decoded
    /// once; the clone charges its byte gauge on first observation).
    /// Entries whose materialization is still in flight in another thread
    /// are skipped. Budget, counters and the eviction log are copied by
    /// value; the clone's byte gauge is recomputed from the entries it
    /// actually kept.
    fn clone(&self) -> Catalog {
        let mut bytes = 0u64;
        let shards = self
            .shards
            .iter()
            .map(|shard| {
                let map = shard.read().unwrap_or_else(PoisonError::into_inner);
                RwLock::new(
                    map.iter()
                        .filter_map(|(&k, entry)| {
                            let acct = entry.meta.acct.load(Ordering::Relaxed);
                            if entry.slot.get().is_some() && acct == ACCT_CHARGED {
                                let b = entry.meta.bytes.load(Ordering::Relaxed);
                                bytes += b;
                                let meta = SlotMeta {
                                    bytes: AtomicU64::new(b),
                                    rebuild_nanos: AtomicU64::new(
                                        entry.meta.rebuild_nanos.load(Ordering::Relaxed),
                                    ),
                                    hits: AtomicU64::new(entry.meta.hits.load(Ordering::Relaxed)),
                                    acct: AtomicU8::new(ACCT_CHARGED),
                                };
                                Some((
                                    k,
                                    CacheEntry {
                                        slot: Arc::clone(&entry.slot),
                                        meta: Arc::new(meta),
                                        pending: None,
                                    },
                                ))
                            } else if entry.pending.is_some() && acct != ACCT_RETIRED {
                                // A lazily restored section not yet charged
                                // here: keep it pending (an UPDATE after a
                                // lazy restore must not silently drop the
                                // still-encoded warm state).
                                let meta = SlotMeta {
                                    bytes: AtomicU64::new(0),
                                    rebuild_nanos: AtomicU64::new(
                                        entry.meta.rebuild_nanos.load(Ordering::Relaxed),
                                    ),
                                    hits: AtomicU64::new(entry.meta.hits.load(Ordering::Relaxed)),
                                    acct: AtomicU8::new(ACCT_PENDING),
                                };
                                Some((
                                    k,
                                    CacheEntry {
                                        slot: Arc::clone(&entry.slot),
                                        meta: Arc::new(meta),
                                        pending: entry.pending.clone(),
                                    },
                                ))
                            } else {
                                None
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        Catalog {
            views: self.views.clone(),
            by_name: self.by_name.clone(),
            shards,
            budget: AtomicU64::new(self.budget.load(Ordering::Relaxed)),
            bytes: AtomicU64::new(bytes),
            evictions: AtomicU64::new(self.evictions.load(Ordering::Relaxed)),
            admission_rejects: AtomicU64::new(self.admission_rejects.load(Ordering::Relaxed)),
            eviction_log: Mutex::new(
                self.eviction_log
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
            sections_faulted: AtomicU64::new(self.sections_faulted.load(Ordering::Relaxed)),
            lazy_decode_nanos: AtomicU64::new(self.lazy_decode_nanos.load(Ordering::Relaxed)),
        }
    }
}

fn shard_index(key: (usize, usize)) -> usize {
    // Fibonacci hashing of the combined key; documents and views are
    // small dense indices, so this spreads consecutive ids well.
    let combined = (key.0 as u64) << 32 | (key.1 as u64 & 0xffff_ffff);
    (combined.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48) as usize % CATALOG_SHARDS
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a view; names must be unique within the catalog.
    pub fn register(&mut self, view: View) -> Result<ViewId, EngineError> {
        if self.by_name.contains_key(&view.name) {
            return Err(EngineError::DuplicateView(view.name.clone()));
        }
        let id = ViewId(self.views.len());
        self.by_name.insert(view.name.clone(), id.0);
        self.views.push(view);
        Ok(id)
    }

    /// The registered views, in registration order.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the catalog has no views.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The view behind a handle.
    pub fn view(&self, id: ViewId) -> &View {
        &self.views[id.0]
    }

    /// Looks a view up by name.
    pub fn find(&self, name: &str) -> Option<ViewId> {
        self.by_name.get(name).copied().map(ViewId)
    }

    /// Number of extensions currently cached (fully materialized) for
    /// `doc`.
    pub fn cached_extensions(&self, doc: DocId) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .filter(|(&(d, _), entry)| d == doc.0 && entry.slot.get().is_some())
                    .count()
            })
            .sum()
    }

    /// The configured byte budget (`u64::MAX` = unbounded).
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Sets the byte budget and immediately enforces it (shrinking the
    /// budget under a warm cache evicts the lowest-score extensions until
    /// the gauge fits).
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        self.enforce_budget(None);
    }

    /// Bytes currently held by completed, admitted extensions.
    pub fn cache_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Lifetime count of budget-driven evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lifetime count of refused admissions.
    pub fn admission_rejects(&self) -> u64 {
        self.admission_rejects.load(Ordering::Relaxed)
    }

    /// Lifetime count of pending snapshot sections decoded on first
    /// probe (lazy restore faults).
    pub fn sections_faulted(&self) -> u64 {
        self.sections_faulted.load(Ordering::Relaxed)
    }

    /// Total nanoseconds spent decoding faulted sections.
    pub fn lazy_decode_nanos(&self) -> u64 {
        self.lazy_decode_nanos.load(Ordering::Relaxed)
    }

    /// The most recent eviction/rejection records, oldest first (bounded
    /// by [`EVICTION_LOG_CAPACITY`]).
    pub fn eviction_log(&self) -> Vec<EvictionRecord> {
        self.eviction_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Releases an entry's byte charge exactly once (the
    /// `PENDING/CHARGED → RETIRED` transition). Returns the bytes
    /// released, 0 when the entry was never charged (still in flight, or
    /// already retired by a racing remover).
    fn retire(&self, entry: &CacheEntry) -> u64 {
        if entry
            .meta
            .acct
            .compare_exchange(
                ACCT_CHARGED,
                ACCT_RETIRED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            let released = entry.meta.bytes.load(Ordering::Relaxed);
            self.bytes.fetch_sub(released, Ordering::Relaxed);
            released
        } else {
            // PENDING → RETIRED: the materializer, when it completes,
            // will lose its own compare-exchange and skip the charge.
            entry.meta.acct.store(ACCT_RETIRED, Ordering::Release);
            0
        }
    }

    /// Appends to the bounded eviction log.
    fn log_eviction(&self, record: EvictionRecord) {
        self.eviction_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }

    /// Evicts lowest-score entries until the byte gauge fits the budget.
    /// `newest` marks the entry whose admission triggered enforcement: if
    /// it is chosen as a victim its removal counts as an *admission
    /// reject* rather than an eviction. Victim selection is a racy scan
    /// (shard read locks only); the removal re-checks identity under the
    /// shard write lock, so a concurrently replaced slot is never
    /// mis-evicted.
    fn enforce_budget(&self, newest: Option<(usize, usize)>) {
        loop {
            let budget = self.budget.load(Ordering::Relaxed);
            if self.bytes.load(Ordering::Relaxed) <= budget {
                return;
            }
            // Lowest score loses; ties break on the larger key so the
            // scan is deterministic under equal scores.
            let mut victim: Option<((usize, usize), f64)> = None;
            for shard in &self.shards {
                let map = shard.read().unwrap_or_else(PoisonError::into_inner);
                for (&k, entry) in map.iter() {
                    if entry.meta.acct.load(Ordering::Relaxed) != ACCT_CHARGED {
                        continue;
                    }
                    let s = entry.meta.score();
                    let beats = match victim {
                        None => true,
                        Some((bk, bs)) => s < bs || (s == bs && k > bk),
                    };
                    if beats {
                        victim = Some((k, s));
                    }
                }
            }
            let Some((key, score)) = victim else {
                // Nothing evictable (all charged entries raced away);
                // give up rather than spin.
                return;
            };
            let removed = {
                let mut map = self.shards[shard_index(key)]
                    .write()
                    .unwrap_or_else(PoisonError::into_inner);
                match map.get(&key) {
                    Some(entry) if entry.meta.acct.load(Ordering::Relaxed) == ACCT_CHARGED => {
                        map.remove(&key)
                    }
                    _ => None, // replaced or already gone; rescan
                }
            };
            if let Some(entry) = removed {
                let released = self.retire(&entry);
                if released > 0 {
                    let admission_reject = newest == Some(key);
                    if admission_reject {
                        self.admission_rejects.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    self.log_eviction(EvictionRecord {
                        doc: key.0,
                        view: key.1,
                        bytes: released,
                        hits: entry.meta.hits.load(Ordering::Relaxed),
                        rebuild_nanos: entry.meta.rebuild_nanos.load(Ordering::Relaxed),
                        score,
                        admission_reject,
                    });
                }
            }
        }
    }

    /// Drops every cached extension of `doc` (call after replacing the
    /// document's content). Returns how many materialized extensions were
    /// evicted. Prefer [`Engine::invalidate`], which also resets the
    /// document's [`DocStats`] counters.
    pub fn invalidate(&self, doc: DocId) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut removed = Vec::new();
            {
                let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
                map.retain(|&(d, _), entry| {
                    if d == doc.0 {
                        if entry.slot.get().is_some() {
                            evicted += 1;
                        }
                        removed.push(entry.clone());
                        false
                    } else {
                        true
                    }
                });
            }
            for entry in removed {
                self.retire(&entry);
            }
        }
        evicted
    }

    /// Every cache entry a snapshot should persist, as `(doc index, view
    /// index, extension, hits, rebuild nanos)`, sorted by key. Completed
    /// entries are taken as-is; **pending** lazily restored sections are
    /// decoded transiently (the cache itself is not mutated) so a
    /// re-save after a lazy restore keeps the never-probed warm state —
    /// a section whose bytes turn out corrupt is skipped, keeping the
    /// save total. In-flight materializations are skipped, exactly like
    /// [`Catalog::clone`] skips them.
    #[allow(clippy::type_complexity)]
    fn completed_entries(&self) -> Vec<(usize, usize, Arc<ProbExtension>, u64, u64)> {
        let mut out: Vec<(usize, usize, Arc<ProbExtension>, u64, u64)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let map = shard.read().unwrap_or_else(PoisonError::into_inner);
                map.iter()
                    .filter_map(|(&(d, v), entry)| {
                        let ext = match entry.slot.get() {
                            Some(ext) => Arc::clone(ext),
                            None => {
                                let pending = entry.pending.as_ref()?;
                                let _flight = pending
                                    .flight
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner);
                                match entry.slot.get() {
                                    Some(ext) => Arc::clone(ext),
                                    None => {
                                        Arc::new(pending.section.decode(pending.view.clone()).ok()?)
                                    }
                                }
                            }
                        };
                        Some((
                            d,
                            v,
                            ext,
                            entry.meta.hits.load(Ordering::Relaxed),
                            entry.meta.rebuild_nanos.load(Ordering::Relaxed),
                        ))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|&(d, v, ..)| (d, v));
        out
    }

    /// Installs an already-materialized extension as a completed cache
    /// entry, replacing whatever the slot held (snapshot restore, and the
    /// commit step of [`Engine::apply_edits`]). The entry is charged its
    /// measured footprint immediately; `rebuild_nanos`/`hits` seed the
    /// eviction score (carried over from the replaced generation or a
    /// snapshot). The caller guarantees the indices are in range and runs
    /// budget enforcement after its batch of installs.
    fn install_entry(
        &self,
        doc: usize,
        view: usize,
        ext: Arc<ProbExtension>,
        rebuild_nanos: u64,
        hits: u64,
    ) {
        let key = (doc, view);
        let slot: ExtensionSlot = Arc::new(OnceLock::new());
        let bytes = ext.heap_bytes() as u64;
        slot.set(ext).expect("fresh OnceLock");
        let entry = CacheEntry {
            slot,
            meta: Arc::new(SlotMeta {
                bytes: AtomicU64::new(bytes),
                rebuild_nanos: AtomicU64::new(rebuild_nanos),
                hits: AtomicU64::new(hits),
                acct: AtomicU8::new(ACCT_CHARGED),
            }),
            pending: None,
        };
        let replaced = self.shards[shard_index(key)]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, entry);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if let Some(old) = replaced {
            self.retire(&old);
        }
    }

    /// Installs an **undecoded** snapshot section as a pending cache
    /// entry (lazy restore): the slot stays empty and the encoded body
    /// rides along, to be decoded — single-flight — on first probe.
    /// Nothing is charged to the byte gauge until the fault completes.
    /// The caller guarantees the indices are in range.
    fn install_pending(
        &self,
        doc: usize,
        view: usize,
        section: pxv_store::ExtSectionRef,
        rebuild_nanos: u64,
        hits: u64,
    ) {
        let key = (doc, view);
        let entry = CacheEntry {
            slot: Arc::new(OnceLock::new()),
            meta: Arc::new(SlotMeta {
                bytes: AtomicU64::new(0),
                rebuild_nanos: AtomicU64::new(rebuild_nanos),
                hits: AtomicU64::new(hits),
                acct: AtomicU8::new(ACCT_PENDING),
            }),
            pending: Some(Arc::new(PendingBody {
                section,
                view: self.views[view].clone(),
                flight: Mutex::new(()),
            })),
        };
        let replaced = self.shards[shard_index(key)]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, entry);
        if let Some(old) = replaced {
            self.retire(&old);
        }
    }

    /// Every *completed* cached extension of `doc` as `(view index,
    /// extension, hits, rebuild nanos)`, sorted by view index — the set
    /// the update path maintains across an edit. In-flight
    /// materializations are skipped; they belong to the pre-edit
    /// document, and the update's commit step evicts their slots so they
    /// finish orphaned (private to the query that started them) instead
    /// of publishing stale state.
    fn completed_for(&self, doc: usize) -> Vec<(usize, Arc<ProbExtension>, u64, u64)> {
        let mut out: Vec<(usize, Arc<ProbExtension>, u64, u64)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let map = shard.read().unwrap_or_else(PoisonError::into_inner);
                map.iter()
                    .filter(|(&(d, _), _)| d == doc)
                    .filter_map(|(&(_, v), entry)| {
                        entry.slot.get().map(|ext| {
                            (
                                v,
                                Arc::clone(ext),
                                entry.meta.hits.load(Ordering::Relaxed),
                                entry.meta.rebuild_nanos.load(Ordering::Relaxed),
                            )
                        })
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|&(v, ..)| v);
        out
    }

    /// The memoized extension of view `view_idx` over the document
    /// `fetch` returns; materializes on first use. Returns the extension
    /// and whether it was a cache hit (single-flight waiters count as
    /// hits — they did not materialize).
    ///
    /// `fetch` runs *inside* the materializing closure, not before the
    /// slot lookup: it re-reads the engine's current document under its
    /// per-document lock, so a materialization whose slot was inserted
    /// after an `apply_edits` commit can only ever see the post-edit
    /// document — a query still holding a pre-edit snapshot cannot
    /// publish a stale extension into the shared cache.
    ///
    /// A completing materialization charges its measured footprint to the
    /// byte gauge — but only if its slot is still the one in the map
    /// (`PENDING → CHARGED`; a concurrent invalidation retires the slot
    /// first and wins that race instead) — and then runs budget
    /// enforcement, which may immediately reject the new entry itself.
    /// Either way the caller keeps the returned `Arc`: budget pressure
    /// affects what the *shared* cache retains, never the answer.
    fn extension(
        &self,
        doc: usize,
        fetch: impl Fn() -> Arc<PDocument>,
        view_idx: usize,
    ) -> Result<(Arc<ProbExtension>, Probe), EngineError> {
        let key = (doc, view_idx);
        let shard = &self.shards[shard_index(key)];
        let entry: CacheEntry = {
            let map = shard.read().unwrap_or_else(PoisonError::into_inner);
            map.get(&key).cloned()
        }
        .unwrap_or_else(|| {
            let mut map = shard.write().unwrap_or_else(PoisonError::into_inner);
            map.entry(key).or_default().clone()
        });
        // Lazily restored entries decode their snapshot section on first
        // probe instead of materializing from the document.
        if let Some(pending) = entry.pending.clone() {
            return self.fault_section(key, &entry, &pending, fetch);
        }
        // Single-flight: get_or_init runs the closure in exactly one
        // thread; racing threads block here and share the result, so the
        // same extension is never materialized twice.
        let mut materialized = false;
        let ext = Arc::clone(entry.slot.get_or_init(|| {
            materialized = true;
            let start = Instant::now();
            let built = Arc::new(ProbExtension::materialize(&fetch(), &self.views[view_idx]));
            entry
                .meta
                .rebuild_nanos
                .store(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            built
        }));
        if materialized {
            entry
                .meta
                .bytes
                .store(ext.heap_bytes() as u64, Ordering::Relaxed);
            self.charge(key, &entry);
        } else {
            entry.meta.hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok((
            ext,
            if materialized {
                Probe::Materialized
            } else {
                Probe::Hit
            },
        ))
    }

    /// Charges a slot's measured bytes to the gauge exactly once
    /// (`PENDING → CHARGED`; a concurrent invalidation retires the slot
    /// first and wins the race instead) and then enforces the budget,
    /// which may immediately reject the entry itself.
    fn charge(&self, key: (usize, usize), entry: &CacheEntry) {
        let charged = entry
            .meta
            .acct
            .compare_exchange(
                ACCT_PENDING,
                ACCT_CHARGED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if charged {
            self.bytes
                .fetch_add(entry.meta.bytes.load(Ordering::Relaxed), Ordering::Relaxed);
            self.enforce_budget(Some(key));
        }
    }

    /// The fault path of a lazily restored entry: decode the pending
    /// snapshot section (single-flight behind the body's mutex), validate
    /// it against the live document, publish it into the slot and charge
    /// the byte gauge. A section already decoded — here, or in the
    /// catalog generation this entry was cloned from — is a plain hit,
    /// charged on first observation. Corrupt or inconsistent bytes are a
    /// typed [`EngineError::Section`] on every probe; other sections keep
    /// serving.
    fn fault_section(
        &self,
        key: (usize, usize),
        entry: &CacheEntry,
        pending: &PendingBody,
        fetch: impl Fn() -> Arc<PDocument>,
    ) -> Result<(Arc<ProbExtension>, Probe), EngineError> {
        let hit = |ext: &Arc<ProbExtension>| {
            if entry.meta.acct.load(Ordering::Relaxed) == ACCT_PENDING {
                entry
                    .meta
                    .bytes
                    .store(ext.heap_bytes() as u64, Ordering::Relaxed);
                self.charge(key, entry);
            }
            entry.meta.hits.fetch_add(1, Ordering::Relaxed);
            (Arc::clone(ext), Probe::Hit)
        };
        if let Some(ext) = entry.slot.get() {
            return Ok(hit(ext));
        }
        let flight = pending
            .flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(ext) = entry.slot.get() {
            // Raced with another query's fault of the same section:
            // single-flight turned this probe into a hit.
            return Ok(hit(ext));
        }
        let section_err = |what: String| EngineError::Section {
            doc: key.0,
            view: key.1,
            what,
        };
        let start = Instant::now();
        let ext = pending
            .section
            .decode(pending.view.clone())
            .map_err(|e| section_err(e.to_string()))?;
        // The eager restore path cross-checks every original-node
        // reference against the target document before serving; the lazy
        // path runs exactly that check at fault time.
        let pdoc = fetch();
        let consistent = |ext_node: NodeId, orig: NodeId| {
            pdoc.contains(orig) && pdoc.label(orig) == ext.pdoc.label(ext_node)
        };
        if !ext.results.iter().all(|r| consistent(r.ext_root, r.orig))
            || !ext.orig_entries().all(|(e, o)| consistent(e, o))
        {
            return Err(section_err(format!(
                "extension of view `{}` does not match document {}",
                pending.view.name, key.0
            )));
        }
        let nanos = start.elapsed().as_nanos() as u64;
        let ext = Arc::new(ext);
        entry
            .meta
            .bytes
            .store(ext.heap_bytes() as u64, Ordering::Relaxed);
        // rebuild_nanos keeps the saved materialization cost — the
        // eviction score should reflect what a *rebuild* costs, which a
        // cheap decode does not measure. Decode time is counted apart.
        let _ = entry.slot.set(Arc::clone(&ext));
        drop(flight);
        self.charge(key, entry);
        self.sections_faulted.fetch_add(1, Ordering::Relaxed);
        self.lazy_decode_nanos.fetch_add(nanos, Ordering::Relaxed);
        Ok((ext, Probe::Faulted))
    }
}

/// Key of one plan-cache entry: the canonical structural form of the
/// query plus every planning knob the plan depends on. The catalog epoch
/// is part of the key so an entry can never outlive the view set it was
/// planned against (the cache is also cleared whenever the epoch bumps).
/// `Ord` gives LRU eviction a deterministic tie-break when two entries
/// share a recency tick.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct PlanKey {
    query: String,
    epoch: u64,
    interleaving_limit: usize,
    preference: u8,
}

impl PlanKey {
    fn new(q: &TreePattern, epoch: u64, options: &QueryOptions) -> PlanKey {
        PlanKey {
            query: q.canonical_key(),
            epoch,
            interleaving_limit: options.interleaving_limit,
            // PlanPreference has no Hash impl; a stable discriminant does.
            preference: match options.preference {
                PlanPreference::PreferTp => 0,
                PlanPreference::PreferTpi => 1,
                PlanPreference::TpOnly => 2,
                PlanPreference::TpiOnly => 3,
            },
        }
    }
}

/// What one [`Engine::apply_edits`] call did (per-call view of the
/// lifetime `edits_applied` / `deltas_applied` / `delta_fallbacks`
/// counters in [`EngineStats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Edits applied (the whole input sequence, or 0 on the empty one).
    pub edits: usize,
    /// Maintenance steps — one per (edit, cached extension) pair —
    /// serviced incrementally.
    pub deltas_applied: u64,
    /// Maintenance steps that fell back to full rematerialization.
    pub delta_fallbacks: u64,
    /// Cached extensions carried warm across the edit sequence.
    pub extensions_maintained: usize,
    /// Fresh ids assigned to [`Edit::InsertSubtree`] roots, in edit
    /// order.
    pub inserted_roots: Vec<NodeId>,
}

/// One memoized planner outcome plus its recency tick (for LRU
/// eviction). Negative results are cached too, so a hot unanswerable
/// query does not re-run TPIrewrite on every arrival.
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<Result<Plan, PlanError>>,
    last_used: AtomicU64,
}

type PlanCache = RwLock<HashMap<PlanKey, PlanEntry>>;

/// Default upper bound on cached plans
/// ([`Engine::set_plan_cache_capacity`] overrides it at runtime). Keys
/// are client-controlled (every distinct canonical query × options is
/// one entry), so a serving deployment streaming unique queries must not
/// grow the map without limit; at the cap the least-recently-used
/// entries are evicted — at least an eighth of the cache at a time, so a
/// full cache is not rescanned on every subsequent miss.
pub const PLAN_CACHE_CAPACITY: usize = 4096;

/// Upper bound on distinct queries retained in the workload log that
/// feeds [`Engine::advise`]. At the cap the least-recently-seen entry is
/// dropped; counts of retained entries keep accumulating, so the hot
/// tail of the workload survives indefinitely while one-off queries age
/// out.
pub const QUERY_LOG_CAPACITY: usize = 1024;

/// One retained workload entry: the (minimized) query, how many times it
/// was seen, and a recency tick for bounded-ring eviction.
#[derive(Clone, Debug)]
struct LogSlot {
    pattern: TreePattern,
    count: u64,
    last_seen: u64,
}

/// The bounded query-frequency log, keyed by `(doc, canonical form)`.
#[derive(Clone, Debug, Default)]
struct QueryLog {
    entries: HashMap<(usize, String), LogSlot>,
    tick: u64,
}

impl QueryLog {
    fn record(&mut self, doc: usize, pattern: &TreePattern, count: u64) {
        self.tick += 1;
        let tick = self.tick;
        let key = (doc, pattern.canonical_key());
        if let Some(slot) = self.entries.get_mut(&key) {
            slot.count += count;
            slot.last_seen = tick;
            return;
        }
        if self.entries.len() >= QUERY_LOG_CAPACITY {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(k, slot)| (slot.last_seen, (k.0, k.1.clone())))
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            LogSlot {
                pattern: pattern.clone(),
                count,
                last_seen: tick,
            },
        );
    }
}

/// The stateful query-answering engine (see the module docs for a tour).
///
/// Registration (`add_document`, `register_view`) takes `&mut self`;
/// every query path (`answer*`, `plan*`, `warm`) takes `&self` and is
/// safe to call from many threads at once. Mutation of *existing*
/// documents ([`Engine::apply_edits`], [`Engine::invalidate`],
/// [`Engine::replace_document`]) also takes `&self` — document slots sit
/// behind per-document locks, the catalog is sharded, and the epoch is
/// atomic — so a served (shared) engine can be updated in place. Writers
/// are internally consistent but a query racing an `apply_edits` call on
/// the *same document* may observe the pre-edit extension of one view and
/// the post-edit extension of another; when cross-view consistency
/// matters, either serialize updates against queries or — as the `prxd`
/// server does — wrap the engine in an [`EpochEngine`] so edits prepare
/// a fresh engine off to the side and publish it atomically.
///
/// # Lock poisoning
///
/// Every internal lock acquisition recovers from poisoning
/// (`unwrap_or_else(PoisonError::into_inner)`) instead of propagating the
/// panic. This is sound because guarded values are only ever replaced
/// wholesale (document slots swap a whole `Arc`) or hold *cache* state
/// (extensions, plans, the query log) that is recomputable by
/// construction; [`Engine::apply_edits`] commits by evicting before
/// reinstalling, so an unwind mid-commit leaves the cache cold for that
/// document, never stale. Without recovery, one panicking request would
/// turn every subsequent lock acquisition into a panic — a death spiral
/// the serving-layer regression tests pin down.
#[derive(Debug)]
pub struct Engine {
    /// Per-document slots: the `Vec` only grows (under `&mut` in
    /// [`Engine::add_document`]); each slot's content is swappable under
    /// `&self` through its own lock.
    documents: Vec<RwLock<Arc<PDocument>>>,
    doc_names: HashMap<String, usize>,
    doc_stats: Vec<AtomicDocStats>,
    catalog: Catalog,
    options: QueryOptions,
    stats: AtomicEngineStats,
    plan_cache: PlanCache,
    plan_tick: AtomicU64,
    plan_cache_capacity: AtomicUsize,
    query_log: Mutex<QueryLog>,
    catalog_epoch: AtomicU64,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine {
            documents: Vec::new(),
            doc_names: HashMap::new(),
            doc_stats: Vec::new(),
            catalog: Catalog::default(),
            options: QueryOptions::default(),
            stats: AtomicEngineStats::default(),
            plan_cache: RwLock::new(HashMap::new()),
            plan_tick: AtomicU64::new(0),
            plan_cache_capacity: AtomicUsize::new(PLAN_CACHE_CAPACITY),
            query_log: Mutex::new(QueryLog::default()),
            catalog_epoch: AtomicU64::new(0),
        }
    }
}

impl Clone for Engine {
    fn clone(&self) -> Engine {
        Engine {
            documents: self
                .documents
                .iter()
                .map(|slot| {
                    RwLock::new(Arc::clone(
                        &slot.read().unwrap_or_else(PoisonError::into_inner),
                    ))
                })
                .collect(),
            doc_names: self.doc_names.clone(),
            doc_stats: self
                .doc_stats
                .iter()
                .map(|s| {
                    let snap = s.snapshot();
                    AtomicDocStats {
                        materializations: AtomicU64::new(snap.materializations),
                        cache_hits: AtomicU64::new(snap.cache_hits),
                    }
                })
                .collect(),
            catalog: self.catalog.clone(),
            options: self.options.clone(),
            stats: AtomicEngineStats::restore(self.stats.snapshot()),
            plan_cache: RwLock::new(
                self.plan_cache
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .map(|(k, e)| {
                        (
                            k.clone(),
                            PlanEntry {
                                plan: Arc::clone(&e.plan),
                                last_used: AtomicU64::new(e.last_used.load(Ordering::Relaxed)),
                            },
                        )
                    })
                    .collect(),
            ),
            plan_tick: AtomicU64::new(self.plan_tick.load(Ordering::Relaxed)),
            plan_cache_capacity: AtomicUsize::new(self.plan_cache_capacity.load(Ordering::Relaxed)),
            query_log: Mutex::new(
                self.query_log
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
            catalog_epoch: AtomicU64::new(self.catalog_epoch.load(Ordering::SeqCst)),
        }
    }
}

impl Engine {
    /// An engine with default [`QueryOptions`].
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine whose [`Engine::answer`] uses `options`.
    pub fn with_options(options: QueryOptions) -> Engine {
        Engine {
            options,
            ..Engine::default()
        }
    }

    /// The engine-level default options.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Registers (and validates) a document; names must be unique.
    pub fn add_document(
        &mut self,
        name: impl Into<String>,
        pdoc: PDocument,
    ) -> Result<DocId, EngineError> {
        let name = name.into();
        if self.doc_names.contains_key(&name) {
            return Err(EngineError::DuplicateDocument(name));
        }
        pdoc.validate()
            .map_err(|e| EngineError::InvalidDocument(e.to_string()))?;
        let id = DocId(self.documents.len());
        self.doc_names.insert(name, id.0);
        self.documents.push(RwLock::new(Arc::new(pdoc)));
        self.doc_stats.push(AtomicDocStats::default());
        Ok(id)
    }

    /// The document behind a handle — a cheap shared snapshot of the
    /// slot's current content ([`Engine::apply_edits`] and
    /// [`Engine::replace_document`] swap the slot; handles already taken
    /// keep the content they saw).
    pub fn document(&self, id: DocId) -> Result<Arc<PDocument>, EngineError> {
        self.documents
            .get(id.0)
            .map(|slot| Arc::clone(&slot.read().unwrap_or_else(PoisonError::into_inner)))
            .ok_or(EngineError::UnknownDocument(id))
    }

    /// Looks a document up by name.
    pub fn find_document(&self, name: &str) -> Option<DocId> {
        self.doc_names.get(name).copied().map(DocId)
    }

    /// Number of registered documents.
    pub fn document_count(&self) -> usize {
        self.documents.len()
    }

    /// Replaces a document's content wholesale and invalidates its cached
    /// extensions (resetting the document's [`DocStats`]). For localized
    /// changes prefer [`Engine::apply_edits`], which *keeps* the cache
    /// warm by maintaining extensions incrementally.
    pub fn replace_document(&self, id: DocId, pdoc: PDocument) -> Result<(), EngineError> {
        pdoc.validate()
            .map_err(|e| EngineError::InvalidDocument(e.to_string()))?;
        let slot = self
            .documents
            .get(id.0)
            .ok_or(EngineError::UnknownDocument(id))?;
        *slot.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(pdoc);
        self.invalidate(id)?;
        Ok(())
    }

    /// Drops every cached extension of `doc` and resets the document's
    /// [`DocStats`] counters, so post-invalidation queries report
    /// re-materializations rather than stale cache hits. Returns how many
    /// materialized extensions were evicted. Takes `&self`: eviction runs
    /// on the catalog's interior-mutability write path, so a shared
    /// (served) engine can be invalidated without exclusive access.
    pub fn invalidate(&self, doc: DocId) -> Result<usize, EngineError> {
        if doc.0 >= self.documents.len() {
            return Err(EngineError::UnknownDocument(doc));
        }
        let evicted = self.catalog.invalidate(doc);
        self.doc_stats[doc.0].reset();
        if evicted > 0 {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.bump_epoch();
        Ok(evicted)
    }

    /// Applies a sequence of [`Edit`]s to a live document,
    /// **incrementally maintaining** every cached extension of that
    /// document instead of evicting it — the warm cache survives the
    /// mutation, which is the whole point of the update path (evicting
    /// would force exactly the rematerialization the engine exists to
    /// amortize).
    ///
    /// All-or-nothing: the edits are validated and applied to a private
    /// copy first, so an invalid edit anywhere in the sequence returns
    /// [`EngineError::Edit`] and mutates nothing. On success the catalog
    /// epoch is bumped (cached plans are dropped and earlier snapshots
    /// become stale, exactly like [`Engine::invalidate`]) and the
    /// per-step maintenance outcomes are surfaced in the returned
    /// [`UpdateReport`] and the engine-lifetime [`EngineStats`] counters
    /// (`edits_applied` / `deltas_applied` / `delta_fallbacks`).
    ///
    /// Post-edit answers are **bit-identical** to a cold engine built
    /// from the post-edit document: incremental maintenance produces,
    /// field for field, the extension a fresh materialization would.
    ///
    /// ```
    /// use pxv_engine::{Edit, Engine};
    /// use pxv_pxml::text::parse_pdocument;
    /// use pxv_pxml::NodeId;
    /// use pxv_rewrite::View;
    /// use pxv_tpq::parse::parse_pattern;
    ///
    /// let mut engine = Engine::new();
    /// let doc = engine
    ///     .add_document("d", parse_pdocument("a#0[mux#1(0.4: b#2[c#3], 0.6: b#4)]").unwrap())
    ///     .unwrap();
    /// engine.register_view(View::new("bs", parse_pattern("a/b").unwrap())).unwrap();
    /// let q = parse_pattern("a/b[c]").unwrap();
    /// assert_eq!(engine.answer(doc, &q).unwrap().stats.materializations, 1);
    ///
    /// // Reweigh one mux branch: the cached extension is maintained, not
    /// // evicted — the follow-up query is still a pure cache hit.
    /// let report = engine
    ///     .apply_edits(doc, &[Edit::SetProb { node: NodeId(2), prob: 0.25 }])
    ///     .unwrap();
    /// assert_eq!(report.edits, 1);
    /// let again = engine.answer(doc, &q).unwrap();
    /// assert_eq!(again.stats.materializations, 0);
    /// assert!((again.nodes[0].1 - 0.25).abs() < 1e-12);
    /// ```
    pub fn apply_edits(&self, doc: DocId, edits: &[Edit]) -> Result<UpdateReport, EngineError> {
        let slot = self
            .documents
            .get(doc.0)
            .ok_or(EngineError::UnknownDocument(doc))?;
        if edits.is_empty() {
            return Ok(UpdateReport::default());
        }
        // Serialize writers on this document for the whole operation; the
        // swap at the end publishes the post-edit state.
        let mut guard = slot.write().unwrap_or_else(PoisonError::into_inner);
        // Build the chain of intermediate documents (edit k maps state k
        // to state k+1) on private copies — one clone per edit, nothing
        // published until every edit has validated.
        let mut states: Vec<Arc<PDocument>> = Vec::with_capacity(edits.len() + 1);
        states.push(Arc::clone(&guard));
        let mut effects = Vec::with_capacity(edits.len());
        for edit in edits {
            let mut next = (**states.last().expect("seeded")).clone();
            effects.push(next.apply_edit(edit)?);
            states.push(Arc::new(next));
        }
        let last = states.last().expect("seeded");
        last.validate()
            .map_err(|e| EngineError::InvalidDocument(e.to_string()))?;
        // Maintain every completed cached extension across the chain.
        let mut report = UpdateReport {
            edits: edits.len(),
            ..UpdateReport::default()
        };
        report.inserted_roots = effects.iter().filter_map(|e| e.inserted_root).collect();
        let mut maintained = Vec::new();
        for (view_idx, ext, hits, rebuild_nanos) in self.catalog.completed_for(doc.0) {
            let mut cur = ext;
            for (k, edit) in edits.iter().enumerate() {
                let (next, outcome) = cur.apply_delta(&states[k + 1], edit, &effects[k]);
                match outcome {
                    DeltaOutcome::Incremental { .. } => report.deltas_applied += 1,
                    DeltaOutcome::Rematerialized => report.delta_fallbacks += 1,
                }
                cur = Arc::new(next);
            }
            maintained.push((view_idx, cur, hits, rebuild_nanos));
        }
        report.extensions_maintained = maintained.len();
        // Commit — still under the per-document write lock, so a second
        // apply_edits on the same document cannot read the new document
        // with the old cache (it blocks on the guard until the catalog
        // matches the published state). Evicting the document's slots
        // first also orphans any *in-flight* materialization another
        // query started against the pre-edit document: that query keeps
        // its private slot handle and finishes with a consistent
        // pre-edit answer, but the stale slot can never be published to
        // later queries.
        *guard = states.pop().expect("seeded");
        self.catalog.invalidate(doc);
        for (view_idx, ext, hits, rebuild_nanos) in maintained {
            // Maintained entries keep their learned score components: an
            // edit changes the bytes but not the demand history.
            self.catalog
                .install_entry(doc.0, view_idx, ext, rebuild_nanos, hits);
        }
        // Maintenance may have grown extensions past the budget; enforce
        // once for the whole batch (inside the document lock, so later
        // writers see a settled cache).
        self.catalog.enforce_budget(None);
        self.bump_epoch();
        drop(guard);
        self.stats
            .edits_applied
            .fetch_add(report.edits as u64, Ordering::Relaxed);
        self.stats
            .deltas_applied
            .fetch_add(report.deltas_applied, Ordering::Relaxed);
        self.stats
            .delta_fallbacks
            .fetch_add(report.delta_fallbacks, Ordering::Relaxed);
        Ok(report)
    }

    /// Registers a view in the engine's catalog. Bumps the catalog epoch:
    /// cached plans were computed against the old view set and are
    /// discarded.
    pub fn register_view(&mut self, view: View) -> Result<ViewId, EngineError> {
        let id = self.catalog.register(view)?;
        self.bump_epoch();
        Ok(id)
    }

    /// Advances the catalog epoch and drops every cached plan (they are
    /// keyed by the old epoch and could never be read again anyway).
    fn bump_epoch(&self) {
        self.catalog_epoch.fetch_add(1, Ordering::SeqCst);
        self.plan_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// The current catalog epoch: bumped by [`Engine::register_view`],
    /// [`Engine::invalidate`] and [`Engine::apply_edits`] (and therefore
    /// by [`Engine::replace_document`]). Plan-cache entries are scoped to
    /// one epoch, and snapshot staleness (`pxv_store::Store::is_stale`)
    /// compares against it.
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch.load(Ordering::SeqCst)
    }

    /// Registers several views, stopping at the first error.
    pub fn register_views(
        &mut self,
        views: impl IntoIterator<Item = View>,
    ) -> Result<Vec<ViewId>, EngineError> {
        views.into_iter().map(|v| self.register_view(v)).collect()
    }

    /// The catalog (views + extension cache).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Lifetime counters (a consistent-enough snapshot of the atomics;
    /// exact once concurrent queries have quiesced).
    pub fn stats(&self) -> EngineStats {
        let mut snapshot = self.stats.snapshot();
        snapshot.cache_bytes = self.catalog.cache_bytes();
        snapshot.evictions = self.catalog.evictions();
        snapshot.admission_rejects = self.catalog.admission_rejects();
        snapshot.sections_faulted = self.catalog.sections_faulted();
        snapshot.lazy_decode_ns = self.catalog.lazy_decode_nanos();
        snapshot
    }

    /// Sets the extension-cache byte budget (`u64::MAX` = unbounded) and
    /// immediately evicts down to it. Budget pressure only affects what
    /// the shared cache *retains* — answers stay bit-identical, evicted
    /// extensions simply rematerialize on next use.
    pub fn set_cache_budget(&self, bytes: u64) {
        self.catalog.set_budget(bytes);
    }

    /// The configured extension-cache byte budget (`u64::MAX` =
    /// unbounded).
    pub fn cache_budget(&self) -> u64 {
        self.catalog.budget()
    }

    /// Bytes currently held by completed cached extensions.
    pub fn cache_bytes(&self) -> u64 {
        self.catalog.cache_bytes()
    }

    /// The most recent eviction/rejection records, oldest first.
    pub fn eviction_log(&self) -> Vec<EvictionRecord> {
        self.catalog.eviction_log()
    }

    /// Folds an observed query into the bounded workload log that feeds
    /// [`Engine::advise`] — the same recording every [`Engine::answer`]
    /// call does implicitly, exposed for replaying an offline workload
    /// trace with explicit multiplicities.
    pub fn record_query(&self, doc: DocId, q: &TreePattern, count: u64) -> Result<(), EngineError> {
        if doc.0 >= self.documents.len() {
            return Err(EngineError::UnknownDocument(doc));
        }
        if count > 0 {
            self.query_log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(doc.0, q, count);
        }
        Ok(())
    }

    /// The current workload log as advisor input, most-frequent first
    /// (ties broken by document index then canonical form, so the order
    /// is deterministic).
    pub fn query_log(&self) -> Vec<WorkloadQuery> {
        let log = self
            .query_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out: Vec<(String, WorkloadQuery)> = log
            .entries
            .iter()
            .map(|((doc, key), slot)| {
                (
                    key.clone(),
                    WorkloadQuery {
                        doc: *doc,
                        pattern: slot.pattern.clone(),
                        count: slot.count,
                    },
                )
            })
            .collect();
        out.sort_by(|(ka, a), (kb, b)| {
            b.count
                .cmp(&a.count)
                .then(a.doc.cmp(&b.doc))
                .then(ka.cmp(kb))
        });
        out.into_iter().map(|(_, q)| q).collect()
    }

    /// Empties the workload log (e.g. after acting on an
    /// [`AdvisorReport`], so the next report reflects fresh demand).
    pub fn clear_query_log(&self) {
        let mut log = self
            .query_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        log.entries.clear();
    }

    /// Mines the workload log for candidate views and scores them
    /// against the byte budget (see `pxv-advisor`). When
    /// `options.budget` is unbounded but the engine's cache budget is
    /// not, the advisor is handed the budget headroom left by the
    /// current cache, so proposals fit alongside what is already
    /// resident. Read-only: nothing is registered — pair with
    /// [`Engine::advise_and_register`] to act on the report.
    pub fn advise(&self, options: &AdviseOptions) -> AdvisorReport {
        let mut options = options.clone();
        if options.budget == u64::MAX && self.catalog.budget() != u64::MAX {
            options.budget = self
                .catalog
                .budget()
                .saturating_sub(self.catalog.cache_bytes());
        }
        pxv_advisor::advise(
            &self.query_log(),
            &self.catalog.views,
            |doc| self.document(DocId(doc)).ok(),
            &options,
        )
    }

    /// Runs [`Engine::advise`] and registers every admitted candidate as
    /// a real view (bumping the catalog epoch once if anything was
    /// registered). Returns the report alongside the new [`ViewId`]s, in
    /// the report's admitted order.
    pub fn advise_and_register(
        &mut self,
        options: &AdviseOptions,
    ) -> Result<(AdvisorReport, Vec<ViewId>), EngineError> {
        let report = self.advise(options);
        let mut ids = Vec::new();
        for candidate in report.admitted() {
            ids.push(
                self.register_view(View::new(candidate.name.clone(), candidate.pattern.clone()))?,
            );
        }
        Ok((report, ids))
    }

    /// Current-generation cache counters for one document (reset by
    /// [`Engine::invalidate`]).
    pub fn doc_stats(&self, doc: DocId) -> Result<DocStats, EngineError> {
        self.doc_stats
            .get(doc.0)
            .map(AtomicDocStats::snapshot)
            .ok_or(EngineError::UnknownDocument(doc))
    }

    /// Plans `q` over the catalog with the engine's default options,
    /// without executing anything.
    pub fn plan(&self, q: &TreePattern) -> Result<Plan, EngineError> {
        self.plan_with(q, &self.options)
    }

    /// Plans `q` with explicit options (through the plan cache).
    pub fn plan_with(&self, q: &TreePattern, options: &QueryOptions) -> Result<Plan, EngineError> {
        match &*self.cached_plan(q, options) {
            Ok(plan) => Ok(plan.clone()),
            Err(e) => Err(EngineError::Plan(e.clone())),
        }
    }

    /// The memoized planner outcome for `q` under `options` and the
    /// current catalog epoch. On a miss the plan is computed and the
    /// first-inserted entry wins, so racing threads observe one canonical
    /// outcome per key.
    fn cached_plan(&self, q: &TreePattern, options: &QueryOptions) -> Arc<Result<Plan, PlanError>> {
        let key = PlanKey::new(q, self.catalog_epoch(), options);
        {
            let map = self
                .plan_cache
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = map.get(&key) {
                entry.last_used.store(
                    self.plan_tick.fetch_add(1, Ordering::Relaxed) + 1,
                    Ordering::Relaxed,
                );
                self.stats.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.plan);
            }
        }
        self.stats.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        let planned = Arc::new(plan_checked(
            q,
            &self.catalog.views,
            options.interleaving_limit,
            options.preference,
        ));
        let mut map = self
            .plan_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        let cap = self.plan_cache_capacity.load(Ordering::Relaxed).max(1);
        if map.len() >= cap && !map.contains_key(&key) {
            // LRU-ish eviction: drop the least-recently-used entries —
            // at least an eighth of the cache — so a stream of unique
            // queries pays the O(n) scan once per batch, not per miss.
            let excess = map.len() + 1 - cap;
            let drop_n = excess.max(cap / 8).min(map.len());
            let mut ticks: Vec<(u64, PlanKey)> = map
                .iter()
                .map(|(k, e)| (e.last_used.load(Ordering::Relaxed), k.clone()))
                .collect();
            ticks.sort();
            for (_, victim) in ticks.into_iter().take(drop_n) {
                map.remove(&victim);
            }
        }
        let tick = self.plan_tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = map.entry(key).or_insert_with(|| PlanEntry {
            plan: planned,
            last_used: AtomicU64::new(tick),
        });
        Arc::clone(&entry.plan)
    }

    /// Sets the plan-cache capacity (entries, not bytes) and immediately
    /// evicts down to it. A capacity of 0 is treated as 1.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.plan_cache_capacity.store(capacity, Ordering::Relaxed);
        let mut map = self
            .plan_cache
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if map.len() > capacity {
            let drop_n = map.len() - capacity;
            let mut ticks: Vec<(u64, PlanKey)> = map
                .iter()
                .map(|(k, e)| (e.last_used.load(Ordering::Relaxed), k.clone()))
                .collect();
            ticks.sort();
            for (_, victim) in ticks.into_iter().take(drop_n) {
                map.remove(&victim);
            }
        }
    }

    /// The configured plan-cache capacity.
    pub fn plan_cache_capacity(&self) -> usize {
        self.plan_cache_capacity.load(Ordering::Relaxed)
    }

    /// Number of plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Eagerly materializes every registered view over `doc`; returns the
    /// number of extensions newly made resident (materialized, or faulted
    /// in from a lazy snapshot section).
    pub fn warm(&self, doc: DocId) -> Result<usize, EngineError> {
        self.document(doc)?;
        let fetch = || self.document(doc).expect("doc checked above");
        let mut new = 0;
        for i in 0..self.catalog.views.len() {
            let (_, probe) = self.catalog.extension(doc.0, fetch, i)?;
            match probe {
                Probe::Hit => {}
                Probe::Faulted => new += 1,
                Probe::Materialized => {
                    new += 1;
                    self.stats.materializations.fetch_add(1, Ordering::Relaxed);
                    self.doc_stats[doc.0]
                        .materializations
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(new)
    }

    /// Answers `q` over `doc` with the engine's default options.
    pub fn answer(&self, doc: DocId, q: &TreePattern) -> Result<Answer, EngineError> {
        self.answer_with(doc, q, &self.options)
    }

    /// Answers `q` over `doc`: plans over the catalog, materializes (or
    /// reuses) exactly the extensions the plan references, and evaluates
    /// touching only those extensions.
    pub fn answer_with(
        &self,
        doc: DocId,
        q: &TreePattern,
        options: &QueryOptions,
    ) -> Result<Answer, EngineError> {
        self.document(doc)?;
        // When profiling is off (the default) every timing site below is
        // a `None` branch — no clocks are read, so the answer path is
        // bit-identical to an uninstrumented run. The spans are equally
        // free: `Span::enter` is inert (no clock, no allocation) unless
        // the process recorder or an ambient trace context is active.
        let mut span_answer = pxv_obs::Span::enter("answer");
        span_answer.record("doc", doc.0 as u64);
        let t_total = options.profile.then(Instant::now);
        // Every answered query is workload evidence for the advisor —
        // recorded before planning so unanswerable (fallback) queries
        // count too; those are exactly the ones a new view could cover.
        self.query_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(doc.0, q, 1);
        let t_plan = t_total.map(|_| Instant::now());
        let planned = {
            let _span = pxv_obs::Span::enter("plan");
            self.cached_plan(q, options)
        };
        let plan_nanos = t_plan.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let plan = match &*planned {
            Ok(plan) => plan.clone(),
            Err(e) => {
                return match options.fallback {
                    Fallback::Forbid => Err(EngineError::Plan(e.clone())),
                    Fallback::Direct => {
                        let t_eval = t_total.map(|_| Instant::now());
                        let _span = pxv_obs::Span::enter("eval");
                        let mut answer = self.direct_answer(
                            doc,
                            q,
                            format!("direct evaluation (fallback: {e})"),
                        );
                        if let Some(start) = t_total {
                            answer.profile = Some(QueryProfile {
                                plan_nanos,
                                eval_nanos: t_eval.map_or(0, |t| t.elapsed().as_nanos() as u64),
                                total_nanos: start.elapsed().as_nanos() as u64,
                                cache_bytes: self.catalog.cache_bytes(),
                                epoch: self.catalog_epoch(),
                                ..QueryProfile::default()
                            });
                        }
                        Ok(answer)
                    }
                }
            }
        };
        // Fetch exactly the extensions the plan references.
        let referenced = plan.referenced_views();
        let mut hits = 0;
        let mut mats = 0;
        let mut probe_nanos = 0u64;
        let mut materialize_nanos = 0u64;
        let fetch = || self.document(doc).expect("doc checked above");
        let mut slots: HashMap<usize, Arc<ProbExtension>> = HashMap::new();
        for &i in &referenced {
            let mut span_probe = pxv_obs::Span::enter("probe");
            span_probe.record("view", i as u64);
            let t_ext = t_total.map(|_| Instant::now());
            let (ext, probe) = self.catalog.extension(doc.0, fetch, i)?;
            span_probe.record("hit", (probe != Probe::Materialized) as u64);
            span_probe.record("fault", (probe == Probe::Faulted) as u64);
            if let Some(t) = t_ext {
                let nanos = t.elapsed().as_nanos() as u64;
                // A hit is a pure cache probe (a lazy fault is billed the
                // same way — its decode time is tracked by the catalog's
                // own counter); a miss spent its time materializing
                // (probe cost is noise within it).
                if probe == Probe::Materialized {
                    materialize_nanos += nanos;
                } else {
                    probe_nanos += nanos;
                }
            }
            // A fault counts as a cache hit: the extension was already
            // resident in the snapshot, not rebuilt from the document, so
            // `extensions_touched == cache_hits + materializations` holds.
            if probe == Probe::Materialized {
                mats += 1;
            } else {
                hits += 1;
            }
            slots.insert(i, ext);
        }
        let t_eval = t_total.map(|_| Instant::now());
        let mut span_eval = pxv_obs::Span::enter("eval");
        let (nodes, candidates) = match &plan {
            Plan::Tp(rw) => {
                let ext = &slots[&rw.view_index];
                (answer_tp(rw, ext), ext.results.len())
            }
            Plan::Tpi(rw) => {
                let exec = execute_tpi(rw, &|i| &*slots[&i]);
                (exec.answers, exec.candidates)
            }
        };
        span_eval.record("candidates", candidates as u64);
        drop(span_eval);
        let eval_nanos = t_eval.map_or(0, |t| t.elapsed().as_nanos() as u64);
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        match &plan {
            Plan::Tp(_) => self.stats.plans_tp.fetch_add(1, Ordering::Relaxed),
            Plan::Tpi(_) => self.stats.plans_tpi.fetch_add(1, Ordering::Relaxed),
        };
        self.stats
            .materializations
            .fetch_add(mats as u64, Ordering::Relaxed);
        self.stats
            .cache_hits
            .fetch_add(hits as u64, Ordering::Relaxed);
        self.doc_stats[doc.0]
            .materializations
            .fetch_add(mats as u64, Ordering::Relaxed);
        self.doc_stats[doc.0]
            .cache_hits
            .fetch_add(hits as u64, Ordering::Relaxed);
        Ok(Answer {
            nodes,
            description: plan.describe(&self.catalog.views),
            plan: Some(plan),
            stats: QueryStats {
                extensions_touched: referenced.len(),
                cache_hits: hits,
                materializations: mats,
                candidates,
            },
            profile: t_total.map(|start| QueryProfile {
                plan_nanos,
                probe_nanos,
                materialize_nanos,
                eval_nanos,
                total_nanos: start.elapsed().as_nanos() as u64,
                cache_bytes: self.catalog.cache_bytes(),
                epoch: self.catalog_epoch(),
                ..QueryProfile::default()
            }),
        })
    }

    /// Answers a batch of queries concurrently on a worker pool sized to
    /// the available parallelism (capped by the batch length), with the
    /// engine's default options. Results come back in input order and are
    /// identical to answering each query sequentially — workers share the
    /// sharded catalog, and single-flight materialization guarantees no
    /// extension is built twice even when every query needs the same cold
    /// view.
    pub fn answer_batch(
        &self,
        queries: &[(DocId, TreePattern)],
    ) -> Vec<Result<Answer, EngineError>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.answer_batch_with(queries, &self.options, threads)
    }

    /// [`Engine::answer_batch`] with explicit options and worker count.
    /// `threads` is clamped to `1..=queries.len()`; with `threads == 1`
    /// the batch runs inline on the calling thread.
    pub fn answer_batch_with(
        &self,
        queries: &[(DocId, TreePattern)],
        options: &QueryOptions,
        threads: usize,
    ) -> Vec<Result<Answer, EngineError>> {
        let n = queries.len();
        let threads = threads.clamp(1, n.max(1));
        if n == 0 {
            return Vec::new();
        }
        if threads == 1 {
            return queries
                .iter()
                .map(|(doc, q)| self.answer_with(*doc, q, options))
                .collect();
        }
        // Hand-rolled chunk-free dispatch: workers pull the next query
        // index off a shared atomic cursor, so long queries never stall a
        // statically-assigned chunk, and results are stitched back into
        // input order at the end.
        //
        // Trace propagation is explicit: the ambient `TraceContext` is
        // thread-local, so each spawned worker re-installs a clone of the
        // caller's context before answering — worker spans then carry the
        // same trace id (and feed the same flight recorder) as if the
        // batch had run inline.
        let ambient = pxv_obs::TraceContext::current();
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<Result<Answer, EngineError>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let ambient = ambient.clone();
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let _ctx = ambient.map(pxv_obs::TraceContext::install);
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let (doc, q) = &queries[i];
                            local.push((i, self.answer_with(*doc, q, options)));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("batch worker panicked") {
                    out[i] = Some(result);
                }
            }
        });
        out.into_iter()
            .map(|slot| slot.expect("every query index dispatched exactly once"))
            .collect()
    }

    /// A point-in-time [`Snapshot`] of the engine: documents, registered
    /// views, every *completed* cached extension, and the catalog epoch.
    ///
    /// The snapshot reads the **live** cache, so extensions evicted by
    /// [`Engine::invalidate`] can never reappear in a later snapshot
    /// (the staleness contract; see DESIGN.md §8). Lifetime counters are
    /// deliberately not captured — a restored engine starts with zeroed
    /// stats, which is what makes "`materializations == 0` on the warm
    /// path" directly observable after a restore.
    pub fn snapshot(&self) -> Snapshot {
        let mut names = vec![String::new(); self.documents.len()];
        for (name, &idx) in &self.doc_names {
            names[idx] = name.clone();
        }
        let documents = names
            .into_iter()
            .zip(
                self.documents
                    .iter()
                    .map(|slot| (**slot.read().unwrap_or_else(PoisonError::into_inner)).clone()),
            )
            .collect();
        let extensions = self
            .catalog
            .completed_entries()
            .into_iter()
            .map(|(doc, view, ext, hits, rebuild_nanos)| ExtensionEntry {
                doc,
                view,
                extension: (*ext).clone(),
                hits,
                rebuild_nanos,
            })
            .collect();
        Snapshot {
            documents,
            views: self.catalog.views.clone(),
            extensions,
            epoch: self.catalog_epoch(),
            budget: self.catalog.budget(),
        }
    }

    /// Rebuilds an engine from a [`Snapshot`] with explicit default
    /// [`QueryOptions`] (options are per-process configuration and are
    /// not part of a snapshot). Cached extensions are installed without
    /// re-materializing anything, and the catalog epoch is restored, so
    /// warm queries run cache-hit-only and answer **bit-identically** to
    /// the engine the snapshot was taken from.
    pub fn from_snapshot_with(
        snapshot: Snapshot,
        options: QueryOptions,
    ) -> Result<Engine, StoreError> {
        let invalid = |e: EngineError| StoreError::Invalid(e.to_string());
        let mut engine = Engine::with_options(options);
        for (name, pdoc) in snapshot.documents {
            engine.add_document(name, pdoc).map_err(invalid)?;
        }
        for view in snapshot.views {
            engine.register_view(view).map_err(invalid)?;
        }
        for entry in snapshot.extensions {
            engine.check_restored_slot(entry.doc, entry.view)?;
            engine.check_restored_extension(entry.doc, entry.view, &entry.extension)?;
            engine.catalog.install_entry(
                entry.doc,
                entry.view,
                Arc::new(entry.extension),
                entry.rebuild_nanos,
                entry.hits,
            );
        }
        // Adopt the snapshot's budget last: heap accounting is
        // deterministic (logical sizes, not allocator capacities), so a
        // cache that fit the budget when saved still fits after restore
        // and nothing is evicted here.
        engine.catalog.set_budget(snapshot.budget);
        // Adopt the snapshot's epoch (registration bumped a fresh
        // counter; plan-cache entries are keyed by epoch, and the cache
        // is empty, so this is purely the generation label).
        engine.catalog_epoch.store(snapshot.epoch, Ordering::SeqCst);
        Ok(engine)
    }

    /// [`Engine::from_snapshot_with`] with default options.
    pub fn from_snapshot(snapshot: Snapshot) -> Result<Engine, StoreError> {
        Engine::from_snapshot_with(snapshot, QueryOptions::default())
    }

    /// Bounds-checks a restored extension's `(doc, view)` slot.
    fn check_restored_slot(&self, doc: usize, view: usize) -> Result<(), StoreError> {
        if doc >= self.documents.len() {
            return Err(StoreError::Invalid(format!(
                "extension references document {} of {}",
                doc,
                self.documents.len()
            )));
        }
        if view >= self.catalog.views.len() {
            return Err(StoreError::Invalid(format!(
                "extension references view {} of {}",
                view,
                self.catalog.views.len()
            )));
        }
        Ok(())
    }

    /// Validates a decoded extension against the catalog slot it was
    /// filed under: the view names must agree, and every original node
    /// the extension bundles must exist in the target document with a
    /// matching label, so a snapshot whose index was mis-filed (by a bug
    /// or a checksum-consistent edit) is rejected instead of silently
    /// serving another document's answers. The lazy restore path defers
    /// this check to fault time ([`EngineError::Section`]).
    fn check_restored_extension(
        &self,
        doc: usize,
        view_idx: usize,
        ext: &ProbExtension,
    ) -> Result<(), StoreError> {
        let view = &self.catalog.views[view_idx];
        if view.name != ext.view.name {
            return Err(StoreError::Invalid(format!(
                "extension for view `{}` filed under catalog slot `{}`",
                ext.view.name, view.name
            )));
        }
        let pdoc = self
            .document(DocId(doc))
            .map_err(|e| StoreError::Invalid(e.to_string()))?;
        let consistent = |ext_node: NodeId, orig: NodeId| {
            pdoc.contains(orig) && pdoc.label(orig) == ext.pdoc.label(ext_node)
        };
        if !ext.results.iter().all(|r| consistent(r.ext_root, r.orig))
            || !ext.orig_entries().all(|(e, o)| consistent(e, o))
        {
            return Err(StoreError::Invalid(format!(
                "extension of view `{}` does not match document {}",
                view.name, doc
            )));
        }
        Ok(())
    }

    /// Rebuilds an engine from a [`LazySnapshot`] (see
    /// [`pxv_store::decode_snapshot_lazy`]): documents and views are
    /// installed eagerly, but each still-encoded extension section is
    /// parked as a pending catalog slot holding only a reference into the
    /// snapshot's byte buffer. Boot cost is proportional to the section
    /// directory, not to the extension payload; the first query that
    /// probes a pending slot decodes it (single-flight) and later probes
    /// are plain hits. A corrupt section surfaces as a typed
    /// [`EngineError::Section`] at query time while every other section
    /// keeps serving — restore itself only fails on structural problems
    /// visible in the directory.
    pub fn from_snapshot_lazy_with(
        snapshot: pxv_store::LazySnapshot,
        options: QueryOptions,
    ) -> Result<Engine, StoreError> {
        let invalid = |e: EngineError| StoreError::Invalid(e.to_string());
        let mut engine = Engine::with_options(options);
        for (name, pdoc) in snapshot.documents {
            engine.add_document(name, pdoc).map_err(invalid)?;
        }
        for view in snapshot.views {
            engine.register_view(view).map_err(invalid)?;
        }
        for section in snapshot.sections {
            engine.check_restored_slot(section.doc, section.view)?;
            match section.body {
                pxv_store::LazyBody::Ready(ext) => {
                    engine.check_restored_extension(section.doc, section.view, &ext)?;
                    engine.catalog.install_entry(
                        section.doc,
                        section.view,
                        Arc::new(*ext),
                        section.rebuild_nanos,
                        section.hits,
                    );
                }
                pxv_store::LazyBody::Pending(body) => {
                    engine.catalog.install_pending(
                        section.doc,
                        section.view,
                        body,
                        section.rebuild_nanos,
                        section.hits,
                    );
                }
            }
        }
        engine.catalog.set_budget(snapshot.budget);
        engine.catalog_epoch.store(snapshot.epoch, Ordering::SeqCst);
        Ok(engine)
    }

    /// [`Engine::from_snapshot_lazy_with`] with default options.
    pub fn from_snapshot_lazy(snapshot: pxv_store::LazySnapshot) -> Result<Engine, StoreError> {
        Engine::from_snapshot_lazy_with(snapshot, QueryOptions::default())
    }

    /// Restores an engine lazily from a snapshot file: like
    /// [`Engine::restore_from`], but extension sections stay encoded
    /// until first probe. v1/v2 snapshot files decode eagerly under the
    /// same call, so this is always safe to prefer when serving.
    pub fn restore_lazy(path: impl AsRef<Path>) -> Result<Engine, StoreError> {
        Engine::from_snapshot_lazy(pxv_store::read_snapshot_lazy(path)?)
    }

    /// Saves a snapshot of this engine to `path` atomically
    /// (write-temp-then-rename via `pxv-store`). Returns the bytes
    /// written.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        pxv_store::write_snapshot(path, &self.snapshot())
    }

    /// Restores an engine from a snapshot file written by
    /// [`Engine::snapshot_to`] (or the `SAVE` protocol command /
    /// `prxview save`). Corrupted, truncated, wrong-version or
    /// wrong-checksum files are rejected with a typed [`StoreError`] —
    /// never a panic.
    pub fn restore_from(path: impl AsRef<Path>) -> Result<Engine, StoreError> {
        Engine::from_snapshot(pxv_store::read_snapshot(path)?)
    }

    /// Evaluates `q` directly over the original p-document (the baseline
    /// the rewriting avoids; touches no extension).
    pub fn answer_direct(&self, doc: DocId, q: &TreePattern) -> Result<Answer, EngineError> {
        self.documents
            .get(doc.0)
            .ok_or(EngineError::UnknownDocument(doc))?;
        Ok(self.direct_answer(doc, q, "direct evaluation".to_string()))
    }

    /// Shared direct-evaluation path (plain `answer_direct` and the
    /// `Fallback::Direct` branch of `answer_with`). The caller must have
    /// checked that `doc` exists.
    fn direct_answer(&self, doc: DocId, q: &TreePattern, description: String) -> Answer {
        let pdoc = self.document(doc).expect("caller checked doc");
        let nodes = pxv_peval::eval_tp(&pdoc, q);
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.direct.fetch_add(1, Ordering::Relaxed);
        Answer {
            stats: QueryStats {
                candidates: nodes.len(),
                ..QueryStats::default()
            },
            nodes,
            plan: None,
            description,
            profile: None,
        }
    }
}

/// Multi-version concurrency control (MVCC) over a whole [`Engine`]:
/// readers resolve against an atomically published engine *epoch* — an
/// `Arc<Engine>` snapshot — while writers prepare the next epoch off to
/// the side and publish it with one pointer swap. Readers therefore
/// **never block** on an in-flight mutation, no matter how long the
/// writer's prepare phase takes; this is what lets the `prxd` server
/// answer `QUERY`/`BATCH`/`STATS` at full speed through an `UPDATE` or
/// `RESTORE` storm.
///
/// # Epoch publication rules
///
/// - [`EpochEngine::read`] hands out the current epoch as an
///   `Arc<Engine>`. The internal lock is held only for the duration of
///   the `Arc` clone, never across engine work.
/// - [`EpochEngine::update`] serializes writers on a mutex, clones the
///   current engine ([`Engine::clone`] shares documents and cached
///   extensions by `Arc`, so the copy is proportional to the *catalog
///   index*, not the data), runs the mutation on the private clone, and
///   publishes it only if the closure returns `Ok` — an error (or a
///   panic) discards the clone and leaves the published epoch untouched.
/// - [`EpochEngine::update_in_place`] is for mutations that are already
///   safe under concurrent readers by the engine's own design
///   (`set_cache_budget`, `invalidate`: interior-mutability paths whose
///   effects are recomputable cache state). It takes the writer mutex for
///   ordering but mutates the *published* engine directly — no clone, no
///   epoch bump.
/// - In-flight readers keep the epoch they started with: a query that
///   began on epoch `n` completes against epoch `n` even if epoch `n+1`
///   publishes midway — snapshot isolation, the cross-view consistency
///   the [`Engine`] docs ask for, without serializing reads.
///
/// The documented trade-off: statistics incremented by readers of epoch
/// `n` *during* a writer's prepare window are not reflected in epoch
/// `n+1` (the clone carried a snapshot of the counters). Counters are
/// telemetry, not ledger state; sequential flows observe exact values.
#[derive(Debug)]
pub struct EpochEngine {
    /// The published epoch. Lock hold times are O(1): `Arc` clone on
    /// read, pointer swap on publish.
    current: RwLock<Arc<Engine>>,
    /// Serializes writers so each prepares against the latest epoch.
    writer: Mutex<()>,
    /// Monotonic count of published epochs (the seed engine is epoch 0).
    epoch: AtomicU64,
}

impl EpochEngine {
    /// Wraps `engine` as the initial published epoch (epoch 0).
    pub fn new(engine: Engine) -> EpochEngine {
        EpochEngine {
            current: RwLock::new(Arc::new(engine)),
            writer: Mutex::new(()),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current epoch's engine, as a shared snapshot. Queries resolved
    /// against it are isolated from any concurrently publishing writer.
    pub fn read(&self) -> Arc<Engine> {
        Arc::clone(&self.current.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// How many epochs have been published over the initial engine.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Runs `f` on a private clone of the current engine and publishes
    /// the clone as the next epoch **iff** `f` returns `Ok`. On `Err` —
    /// or on a panic inside `f` — the clone is discarded and the
    /// published epoch is untouched, so readers can never observe a
    /// half-applied mutation.
    pub fn update<R, E>(&self, f: impl FnOnce(&mut Engine) -> Result<R, E>) -> Result<R, E> {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let mut next = Engine::clone(&self.read());
        let out = f(&mut next)?;
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(next);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(out)
    }

    /// Runs `f` against the published engine under the writer mutex —
    /// for `&self` mutations the engine already defines as safe under
    /// concurrent readers (budget changes, invalidation). No new epoch is
    /// published; the mutex only orders the call against [`update`]
    /// writers so a concurrent clone cannot resurrect pre-call state.
    ///
    /// [`update`]: EpochEngine::update
    pub fn update_in_place<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        f(&self.read())
    }

    /// Publishes `engine` wholesale as the next epoch (the `RESTORE`
    /// path: the replacement was built from a snapshot, outside any
    /// lock).
    pub fn replace(&self, engine: Engine) {
        let _writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        *self.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(engine);
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::examples_paper::fig2_pper;
    use pxv_pxml::text::parse_pdocument;
    use pxv_tpq::parse::parse_pattern;

    // The whole point of the sharded catalog + atomic stats: an Engine is
    // shareable across threads.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Catalog>();
        assert_send_sync::<Answer>();
        assert_send_sync::<EngineError>();
    };

    fn p(s: &str) -> TreePattern {
        parse_pattern(s).unwrap()
    }

    fn bonus_engine() -> (Engine, DocId) {
        let mut e = Engine::new();
        let doc = e.add_document("pper", fig2_pper()).unwrap();
        e.register_views([
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("bonuses", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
        (e, doc)
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut e, _) = bonus_engine();
        assert_eq!(
            e.register_view(View::new("rick", p("a/b"))).err(),
            Some(EngineError::DuplicateView("rick".into()))
        );
        assert_eq!(
            e.add_document("pper", fig2_pper()).err(),
            Some(EngineError::DuplicateDocument("pper".into()))
        );
    }

    #[test]
    fn unknown_and_invalid_documents_rejected() {
        let (mut e, _) = bonus_engine();
        let bogus = DocId(99);
        assert!(matches!(
            e.answer(bogus, &p("a")).err(),
            Some(EngineError::UnknownDocument(_))
        ));
        assert!(matches!(
            e.invalidate(bogus).err(),
            Some(EngineError::UnknownDocument(_))
        ));
        assert!(matches!(
            e.doc_stats(bogus).err(),
            Some(EngineError::UnknownDocument(_))
        ));
        // A mux with mass > 1 fails validation.
        let mut bad = PDocument::new(pxv_pxml::Label::new("a"));
        let m = bad.add_dist(bad.root(), pxv_pxml::PKind::Mux, 1.0);
        bad.add_ordinary(m, pxv_pxml::Label::new("b"), 0.7);
        bad.add_ordinary(m, pxv_pxml::Label::new("c"), 0.7);
        assert!(matches!(
            e.add_document("bad", bad).err(),
            Some(EngineError::InvalidDocument(_))
        ));
    }

    #[test]
    fn warm_then_all_hits() {
        let (e, doc) = bonus_engine();
        assert_eq!(e.warm(doc).unwrap(), 2);
        assert_eq!(e.warm(doc).unwrap(), 0, "second warm is a no-op");
        let a = e
            .answer(doc, &p("IT-personnel//person/bonus[laptop]"))
            .unwrap();
        assert_eq!(a.stats.materializations, 0);
        assert_eq!(a.stats.cache_hits, a.stats.extensions_touched);
        assert_eq!(e.catalog().cached_extensions(doc), 2);
        let ds = e.doc_stats(doc).unwrap();
        assert_eq!(ds.materializations, 2);
        assert_eq!(ds.cache_hits, 1);
    }

    #[test]
    fn fallback_policy() {
        // Example 11: no probabilistic rewriting exists.
        let mut e = Engine::new();
        let doc = e
            .add_document("d", parse_pdocument("a#0[b#1[mux#2(0.5: c#3)]]").unwrap())
            .unwrap();
        e.register_view(View::new("v", p("a[.//c]/b"))).unwrap();
        let q = p("a/b[c]");
        let err = e.answer(doc, &q).expect_err("forbidden by default");
        assert!(matches!(err, EngineError::Plan(_)), "{err}");
        let opts = QueryOptions::new().fallback(Fallback::Direct);
        let a = e.answer_with(doc, &q, &opts).unwrap();
        assert!(!a.from_views());
        assert_eq!(a.stats.extensions_touched, 0);
        assert_eq!(a.nodes, vec![(NodeId(1), 0.5)]);
        assert_eq!(e.stats().direct, 1);
    }

    #[test]
    fn replace_document_invalidates_cache() {
        let mut e = Engine::new();
        let doc = e
            .add_document("d", parse_pdocument("a[b[c]]").unwrap())
            .unwrap();
        e.register_view(View::new("bs", p("a/b"))).unwrap();
        let q = p("a/b[c]");
        let a1 = e.answer(doc, &q).unwrap();
        assert_eq!(a1.nodes.len(), 1);
        e.replace_document(doc, parse_pdocument("a[b, b[c]]").unwrap())
            .unwrap();
        assert_eq!(e.catalog().cached_extensions(doc), 0);
        let a2 = e.answer(doc, &q).unwrap();
        assert_eq!(a2.stats.materializations, 1, "cache was invalidated");
        assert_eq!(a2.nodes.len(), 1);
        assert_eq!(e.stats().invalidations, 1);
    }

    #[test]
    fn per_document_cache_keys() {
        let mut e = Engine::new();
        let d1 = e
            .add_document("d1", parse_pdocument("a[b[c]]").unwrap())
            .unwrap();
        let d2 = e
            .add_document("d2", parse_pdocument("a[b, b[c]]").unwrap())
            .unwrap();
        e.register_view(View::new("bs", p("a/b"))).unwrap();
        let q = p("a/b");
        let a1 = e.answer(d1, &q).unwrap();
        assert_eq!(a1.stats.materializations, 1);
        // Different document: its own extension, not d1's.
        let a2 = e.answer(d2, &q).unwrap();
        assert_eq!(a2.stats.materializations, 1);
        assert_eq!(a2.nodes.len(), 2);
        assert_eq!(a1.nodes.len(), 1);
    }

    #[test]
    fn batch_matches_sequential_on_empty_and_small_inputs() {
        let (e, doc) = bonus_engine();
        assert!(e.answer_batch(&[]).is_empty());
        let q = p("IT-personnel//person/bonus[laptop]");
        let batch = vec![(doc, q.clone()); 5];
        for threads in [1, 2, 4, 8] {
            let fresh = e.clone();
            let results = fresh.answer_batch_with(&batch, fresh.options(), threads);
            let sequential = e.clone();
            let want: Vec<_> = batch
                .iter()
                .map(|(d, q)| sequential.answer(*d, q).unwrap())
                .collect();
            for (got, want) in results.iter().zip(&want) {
                let got = got.as_ref().expect("batch answer");
                assert_eq!(got.nodes, want.nodes, "threads={threads}");
                assert_eq!(got.description, want.description);
            }
        }
    }

    #[test]
    fn batch_reports_per_query_errors() {
        let (e, doc) = bonus_engine();
        let batch = vec![
            (doc, p("IT-personnel//person/bonus[laptop]")),
            (DocId(42), p("a")),                    // unknown document
            (doc, p("unrelated//query")),           // no rewriting, Forbid
            (doc, p("IT-personnel//person/bonus")), // identity rewriting
        ];
        let results = e.answer_batch_with(&batch, e.options(), 4);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(EngineError::UnknownDocument(_))));
        assert!(matches!(results[2], Err(EngineError::Plan(_))));
        assert!(results[3].is_ok());
    }

    #[test]
    fn snapshot_restore_is_bit_identical_and_warm() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let q = p("IT-personnel//person/bonus[laptop]");
        let want = e.answer(doc, &q).unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.extensions.len(), 2);
        assert_eq!(snap.documents[0].0, "pper");
        let restored = Engine::from_snapshot(snap).unwrap();
        assert_eq!(restored.catalog_epoch(), e.catalog_epoch());
        let rd = restored.find_document("pper").unwrap();
        assert_eq!(restored.catalog().cached_extensions(rd), 2);
        let got = restored.answer(rd, &q).unwrap();
        assert_eq!(got.nodes, want.nodes, "bit-identical, not approximate");
        assert_eq!(got.description, want.description);
        assert_eq!(got.stats.materializations, 0, "restored cache is warm");
        assert_eq!(restored.stats().materializations, 0);
    }

    /// The staleness regression of the store satellite: a snapshot taken
    /// *after* an invalidation reads the live cache and therefore cannot
    /// resurrect the evicted extensions.
    #[test]
    fn post_invalidate_snapshot_does_not_resurrect_extensions() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let before = e.snapshot();
        assert_eq!(before.extensions.len(), 2);
        e.invalidate(doc).unwrap();
        let after = e.snapshot();
        assert!(after.extensions.is_empty(), "eviction is durable");
        assert!(after.epoch > before.epoch, "epoch records the mutation");
        let restored = Engine::from_snapshot(after).unwrap();
        let rd = restored.find_document("pper").unwrap();
        let a = restored
            .answer(rd, &p("IT-personnel//person/bonus[laptop]"))
            .unwrap();
        assert_eq!(
            a.stats.materializations, 1,
            "restored engine re-materializes instead of resurrecting"
        );
    }

    #[test]
    fn snapshot_file_round_trip_and_typed_corruption_errors() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let path = std::env::temp_dir().join(format!(
            "pxv-engine-snap-{}-{:?}.pxv",
            std::process::id(),
            std::thread::current().id()
        ));
        let bytes = e.snapshot_to(&path).unwrap();
        assert!(bytes > 0);
        let restored = Engine::restore_from(&path).unwrap();
        let rd = restored.find_document("pper").unwrap();
        assert_eq!(restored.catalog().cached_extensions(rd), 2);
        // Truncate the file: restore must fail with a typed error.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = Engine::restore_from(&path).expect_err("truncated");
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Corrupt { .. }
            ),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_snapshot_rejects_inconsistent_entries() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let mut snap = e.snapshot();
        snap.extensions[0].view = 99;
        let err = Engine::from_snapshot(snap).expect_err("dangling view index");
        assert!(matches!(err, StoreError::Invalid(_)), "{err}");
        let mut swapped = e.snapshot();
        swapped.extensions[0].view = 1 - swapped.extensions[0].view;
        let err = Engine::from_snapshot(swapped).expect_err("view/extension mismatch");
        assert!(matches!(err, StoreError::Invalid(_)), "{err}");
    }

    /// Review regression: an extension filed under the wrong *document*
    /// index (range-valid, view name matching) must be rejected, not
    /// silently served as another document's answers.
    #[test]
    fn from_snapshot_rejects_mismatched_document_association() {
        let mut e = Engine::new();
        let d1 = e
            .add_document("one", parse_pdocument("a[b[c]]").unwrap())
            .unwrap();
        let d2 = e
            .add_document("two", parse_pdocument("x[y]").unwrap())
            .unwrap();
        e.register_view(View::new("bs", p("a/b"))).unwrap();
        e.warm(d1).unwrap();
        e.warm(d2).unwrap();
        let mut snap = e.snapshot();
        let entry = snap
            .extensions
            .iter_mut()
            .find(|entry| entry.doc == 0)
            .expect("doc one has a cached extension");
        assert!(!entry.extension.results.is_empty(), "nonempty extension");
        entry.doc = 1; // mis-file doc one's extension under doc two
        let err = Engine::from_snapshot(snap).expect_err("mis-filed document");
        assert!(matches!(err, StoreError::Invalid(_)), "{err}");
    }

    /// The tentpole contract at engine level: editing a live document
    /// maintains its cached extensions (no eviction, no rematerialization
    /// on the next query) and post-edit answers are bit-identical to a
    /// cold engine built from the post-edit document.
    #[test]
    fn apply_edits_keeps_cache_warm_and_matches_cold_engine() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let q = p("IT-personnel//person/bonus[laptop]");
        let before = e.answer(doc, &q).unwrap();
        let epoch_before = e.catalog_epoch();

        // Reweigh the laptop branch (node 24 under mux 21) and relabel a
        // pda leaf: both localized inside one person.
        let report = e
            .apply_edits(
                doc,
                &[
                    Edit::SetProb {
                        node: NodeId(24),
                        prob: 0.45,
                    },
                    Edit::Relabel {
                        node: NodeId(31),
                        label: pxv_pxml::Label::new("tablet"),
                    },
                ],
            )
            .unwrap();
        assert_eq!(report.edits, 2);
        assert_eq!(report.extensions_maintained, 2, "both cached views kept");
        assert_eq!(report.delta_fallbacks, 0, "localized edits never fall back");
        assert_eq!(report.deltas_applied, 4, "2 edits × 2 extensions");
        assert!(e.catalog_epoch() > epoch_before, "epoch observes the edit");

        // The cache survived: answering re-materializes nothing.
        let after = e.answer(doc, &q).unwrap();
        assert_eq!(after.stats.materializations, 0, "cache stayed warm");
        assert_ne!(after.nodes, before.nodes, "the edit changed the answer");

        // Bit-identical to a cold engine built from the post-edit doc.
        let mut cold = Engine::new();
        let cd = cold
            .add_document("pper", (*e.document(doc).unwrap()).clone())
            .unwrap();
        cold.register_views([
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("bonuses", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
        let want = cold.answer(cd, &q).unwrap();
        assert_eq!(after.nodes, want.nodes, "bit-identical, not approximate");
        assert_eq!(after.description, want.description);

        let stats = e.stats();
        assert_eq!(stats.edits_applied, 2);
        assert_eq!(stats.deltas_applied, 4);
        assert_eq!(stats.delta_fallbacks, 0);
        assert_eq!(
            stats.materializations, 2,
            "lifetime materializations stop at the initial warm-up"
        );
    }

    /// Edits are all-or-nothing: an invalid edit anywhere in the sequence
    /// leaves the document, the cache, and the counters untouched.
    #[test]
    fn apply_edits_is_transactional() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let before_text = e.document(doc).unwrap().to_string();
        let epoch = e.catalog_epoch();
        let err = e
            .apply_edits(
                doc,
                &[
                    Edit::Relabel {
                        node: NodeId(31),
                        label: pxv_pxml::Label::new("tablet"),
                    },
                    // Mux 21 holds 0.1 + 0.9: pushing one branch to 0.95
                    // overflows the mass.
                    Edit::SetProb {
                        node: NodeId(24),
                        prob: 0.95,
                    },
                ],
            )
            .expect_err("second edit must be rejected");
        assert!(matches!(err, EngineError::Edit(_)), "{err}");
        assert_eq!(
            e.document(doc).unwrap().to_string(),
            before_text,
            "first edit rolled back with the second"
        );
        assert_eq!(e.catalog_epoch(), epoch, "no epoch bump on failure");
        assert_eq!(e.stats().edits_applied, 0);
        assert_eq!(e.catalog().cached_extensions(doc), 2, "cache untouched");
        assert!(matches!(
            e.apply_edits(DocId(99), &[]).unwrap_err(),
            EngineError::UnknownDocument(_)
        ));
    }

    /// Inserting a new subtree surfaces the deterministically assigned
    /// fresh ids, and new match candidates appear in maintained answers.
    #[test]
    fn apply_edits_insert_reports_fresh_ids() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let next = e.document(doc).unwrap().next_fresh_id();
        let report = e
            .apply_edits(
                doc,
                &[Edit::InsertSubtree {
                    parent: NodeId(1),
                    prob: 1.0,
                    subtree: parse_pdocument("person[name[Zoe], bonus[laptop]]").unwrap(),
                }],
            )
            .unwrap();
        assert_eq!(report.inserted_roots, vec![next]);
        let a = e
            .answer(doc, &p("IT-personnel//person/bonus[laptop]"))
            .unwrap();
        assert_eq!(a.stats.materializations, 0, "maintained, not rebuilt");
        assert!(
            a.nodes.iter().any(|&(n, _)| n > next),
            "the grafted bonus is an answer"
        );
    }

    /// A snapshot taken after edits carries the post-edit state: restore
    /// round-trips both the documents and the maintained (still warm)
    /// extensions.
    #[test]
    fn snapshot_carries_post_edit_state() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        e.apply_edits(
            doc,
            &[Edit::SetProb {
                node: NodeId(24),
                prob: 0.5,
            }],
        )
        .unwrap();
        let q = p("IT-personnel//person/bonus[laptop]");
        let want = e.answer(doc, &q).unwrap();
        let restored = Engine::from_snapshot(e.snapshot()).unwrap();
        let rd = restored.find_document("pper").unwrap();
        assert_eq!(
            restored.document(rd).unwrap().to_string(),
            e.document(doc).unwrap().to_string(),
            "post-edit document round-trips"
        );
        let got = restored.answer(rd, &q).unwrap();
        assert_eq!(got.nodes, want.nodes, "bit-identical post-edit answers");
        assert_eq!(got.stats.materializations, 0, "maintained cache restored");
        // Future inserts allocate the same fresh ids in both engines
        // (next_fresh_id is part of the snapshot).
        assert_eq!(
            restored.document(rd).unwrap().next_fresh_id(),
            e.document(doc).unwrap().next_fresh_id()
        );
    }

    /// Review regression: two `apply_edits` calls racing on the same
    /// document (plus concurrent queries) must leave the cache matching
    /// the final document — the commit publishes document, evicted
    /// slots, and maintained extensions under one per-document write
    /// lock, so no interleaving can pin a stale extension.
    #[test]
    fn concurrent_apply_edits_keep_cache_consistent() {
        let (e, doc) = bonus_engine();
        e.warm(doc).unwrap();
        let q = p("IT-personnel//person/bonus[laptop]");
        std::thread::scope(|scope| {
            // Two writers reweighing different mux branches of the same
            // document (commuting edits: the final document is the same
            // under either serialization), plus query traffic.
            scope.spawn(|| {
                e.apply_edits(
                    doc,
                    &[Edit::SetProb {
                        node: NodeId(24),
                        prob: 0.5,
                    }],
                )
                .unwrap();
            });
            scope.spawn(|| {
                e.apply_edits(
                    doc,
                    &[Edit::SetProb {
                        node: NodeId(8),
                        prob: 0.5,
                    }],
                )
                .unwrap();
            });
            scope.spawn(|| {
                for _ in 0..20 {
                    let _ = e.answer(doc, &q);
                }
            });
        });
        // The settled cache answers bit-identically to a cold engine
        // built from the final document, without re-materializing.
        let mut cold = Engine::new();
        let cd = cold
            .add_document("pper", (*e.document(doc).unwrap()).clone())
            .unwrap();
        cold.register_views([
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("bonuses", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
        let got = e.answer(doc, &q).unwrap();
        assert_eq!(got.stats.materializations, 0, "cache settled warm");
        assert_eq!(got.nodes, cold.answer(cd, &q).unwrap().nodes);
        assert_eq!(e.stats().edits_applied, 2);
    }

    #[test]
    fn concurrent_cold_batch_single_flight() {
        // Many threads race for the same cold extension: exactly one
        // materialization may happen (single-flight), everyone shares it.
        let (e, doc) = bonus_engine();
        let q = p("IT-personnel//person/bonus[laptop]");
        let batch: Vec<_> = (0..32).map(|_| (doc, q.clone())).collect();
        let results = e.answer_batch_with(&batch, e.options(), 8);
        let total_mats: usize = results
            .iter()
            .map(|r| r.as_ref().unwrap().stats.materializations)
            .sum();
        assert_eq!(total_mats, 1, "exactly one query materialized");
        assert_eq!(e.stats().materializations, 1, "no duplicate work");
        assert_eq!(e.stats().cache_hits, 31);
        assert_eq!(e.catalog().cached_extensions(doc), 1);
    }

    #[test]
    fn epoch_readers_keep_their_snapshot() {
        let (engine, doc) = bonus_engine();
        let q = p("IT-personnel//person/bonus");
        let ee = EpochEngine::new(engine);
        let before = ee.read();
        let baseline = before.answer(doc, &q).unwrap().nodes;
        assert_eq!(ee.epoch(), 0);

        // Publish epoch 1: delete the first person under the root.
        let victim = {
            let pdoc = before.document(doc).unwrap();
            let root = pdoc.root();
            *pdoc.children(root).first().unwrap()
        };
        ee.update(|e| e.apply_edits(doc, &[Edit::DeleteSubtree { node: victim }]))
            .unwrap();
        assert_eq!(ee.epoch(), 1);

        // The pre-publish snapshot still answers the pre-edit state,
        // bit-identically; the new epoch answers the post-edit state.
        assert_eq!(before.answer(doc, &q).unwrap().nodes, baseline);
        let after = ee.read().answer(doc, &q).unwrap().nodes;
        assert_ne!(after, baseline, "the edit changed the answer");
        let mut cold = Engine::new();
        let cd = cold
            .add_document("pper", (*ee.read().document(doc).unwrap()).clone())
            .unwrap();
        cold.register_views([
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("bonuses", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
        assert_eq!(
            after,
            cold.answer(cd, &q).unwrap().nodes,
            "published epoch bit-identical to a cold post-edit engine"
        );
    }

    #[test]
    fn failed_update_publishes_nothing() {
        let (engine, _) = bonus_engine();
        let ee = EpochEngine::new(engine);
        let err: Result<(), EngineError> = ee.update(|e| {
            e.set_cache_budget(1); // mutates the doomed clone only
            Err(EngineError::DuplicateView("x".into()))
        });
        assert!(err.is_err());
        assert_eq!(ee.epoch(), 0, "no epoch published on Err");
        assert_eq!(ee.read().cache_budget(), u64::MAX, "clone was discarded");
    }

    #[test]
    fn panicking_update_is_contained_and_recovered() {
        let (engine, doc) = bonus_engine();
        let q = p("IT-personnel//person/bonus[laptop]");
        let ee = EpochEngine::new(engine);
        let baseline = ee.read().answer(doc, &q).unwrap().nodes;
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), EngineError> = ee.update(|_| panic!("injected mid-update panic"));
        }));
        assert!(panicked.is_err());
        // The poisoned writer mutex recovers; the published epoch never
        // saw the half-applied clone; later writers still publish.
        assert_eq!(ee.epoch(), 0);
        assert_eq!(ee.read().answer(doc, &q).unwrap().nodes, baseline);
        ee.update(|e| {
            e.add_document("fresh", parse_pdocument("a[b]").unwrap())
                .map(|_| ())
        })
        .unwrap();
        assert_eq!(ee.epoch(), 1);
        assert_eq!(ee.read().document_count(), 2);
    }

    #[test]
    fn readers_do_not_block_on_a_slow_writer() {
        use std::sync::atomic::AtomicBool;
        let (engine, doc) = bonus_engine();
        let q = p("IT-personnel//person/bonus");
        let ee = EpochEngine::new(engine);
        let baseline = ee.read().answer(doc, &q).unwrap().nodes;
        let in_prepare = AtomicBool::new(false);
        let release = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                ee.update(|e| {
                    in_prepare.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    e.add_document("held", parse_pdocument("a[b]").unwrap())
                        .map(|_| ())
                })
                .unwrap();
            });
            while !in_prepare.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // The writer is parked mid-prepare; a read must complete now,
            // against the still-published epoch 0.
            let nodes = ee.read().answer(doc, &q).unwrap().nodes;
            assert_eq!(nodes, baseline);
            assert_eq!(ee.epoch(), 0, "nothing published yet");
            release.store(true, Ordering::SeqCst);
        });
        assert_eq!(ee.epoch(), 1);
        assert_eq!(ee.read().document_count(), 2);
    }

    #[test]
    fn update_in_place_mutates_published_state_without_an_epoch() {
        let (engine, doc) = bonus_engine();
        let ee = EpochEngine::new(engine);
        ee.read().warm(doc).unwrap();
        let n = ee.update_in_place(|e| e.invalidate(doc).unwrap());
        assert_eq!(n, 2, "both warm extensions dropped in place");
        assert_eq!(ee.epoch(), 0, "in-place mutation publishes no epoch");
        assert_eq!(ee.read().catalog().cached_extensions(doc), 0);
    }

    #[test]
    fn traced_answers_form_a_span_tree_and_stay_bit_identical() {
        let (e, doc) = bonus_engine();
        let q = p("IT-personnel//person/bonus");
        let plain = e.answer(doc, &q).unwrap();
        // Re-warm is irrelevant here: the second answer hits the cache,
        // so the traced run sees a "probe" hit and no materialization —
        // invalidate first so the cold path (probe → materialize) shows.
        e.invalidate(doc).unwrap();

        let ctx = pxv_obs::TraceContext::with_flight();
        let trace_id = ctx.trace_id();
        let flight = ctx.flight().unwrap().clone();
        let traced = {
            let _guard = ctx.install();
            e.answer_with(doc, &q, &QueryOptions::new().trace(true))
                .unwrap()
        };
        assert_eq!(traced.nodes, plain.nodes, "tracing must not change answers");

        let records = flight.records();
        let trees = pxv_obs::trace::build_trees(&records);
        assert_eq!(trees.len(), 1, "one request, one trace");
        let tree = &trees[0];
        assert_eq!(tree.trace_id, trace_id);
        assert_eq!(tree.roots.len(), 1, "the answer span is the sole root");
        let root = &tree.roots[0];
        assert_eq!(root.record.name, "answer");
        let child_names: Vec<&str> = root.children.iter().map(|c| c.record.name).collect();
        assert!(child_names.contains(&"plan"), "children: {child_names:?}");
        assert!(child_names.contains(&"probe"), "children: {child_names:?}");
        assert!(child_names.contains(&"eval"), "children: {child_names:?}");
        for child in &root.children {
            assert_eq!(child.record.parent_id, root.record.span_id);
            assert_eq!(child.record.trace_id, trace_id);
        }
        // The lower layers' spans nest where the causal chain says: a
        // cold probe contains the rewrite layer's materialization.
        let probe = root
            .children
            .iter()
            .find(|c| c.record.name == "probe")
            .unwrap();
        assert!(
            probe
                .children
                .iter()
                .any(|c| c.record.name == "materialize"),
            "cold probe nests the materialize span"
        );
    }

    #[test]
    fn batch_workers_join_the_callers_trace() {
        let (e, doc) = bonus_engine();
        let queries: Vec<_> = (0..8)
            .map(|_| (doc, p("IT-personnel//person/bonus")))
            .collect();
        let ctx = pxv_obs::TraceContext::with_flight();
        let trace_id = ctx.trace_id();
        let flight = ctx.flight().unwrap().clone();
        let results = {
            let _guard = ctx.install();
            e.answer_batch_with(&queries, &QueryOptions::new(), 4)
        };
        assert!(results.iter().all(Result::is_ok));
        let records = flight.records();
        let answers = records.iter().filter(|r| r.name == "answer").count();
        assert_eq!(answers, 8, "every worker-answered query is traced");
        assert!(
            records.iter().all(|r| r.trace_id == trace_id),
            "workers re-install the caller's context"
        );
        // Without an ambient context (and with the recorder off) the
        // same batch records nothing — the disabled path stays inert.
        let quiet = pxv_obs::TraceContext::with_flight();
        let quiet_flight = quiet.flight().unwrap().clone();
        drop(quiet); // never installed
        e.answer_batch_with(&queries, &QueryOptions::new(), 4);
        assert!(quiet_flight.records().is_empty());
    }
}
