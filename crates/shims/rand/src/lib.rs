//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.8 API it actually uses:
//! [`Rng`] with `gen`, `gen_range` and `gen_bool`, [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator is xoshiro256++
//! seeded through splitmix64 — deterministic, fast, and more than good
//! enough for tests, generators and benches (not cryptographic).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator seedable from a `u64` (subset of rand's trait).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as u64).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((lo as u64).wrapping_add(off)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value API (subset of rand's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64` in `[0, 1)`, uniform `bool`/integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through splitmix64 (stands in for rand's
    /// `StdRng`; deterministic given the seed, not cryptographic).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> StdRng {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..8);
            assert!((3..8).contains(&x));
            let y = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&y));
            let f = rng.gen_range(0.1..0.9);
            assert!((0.1..0.9).contains(&f));
            let b: bool = rng.gen();
            let _ = b;
        }
    }

    #[test]
    fn f64_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / n as f64 - 0.25).abs() < 0.01);
    }
}
