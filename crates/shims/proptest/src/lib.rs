//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the proptest API its tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, strategies for
//! ranges, tuples and vectors, [`any`], and the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//! and `prop_assume!` macros.
//!
//! Semantics: each `#[test]` inside `proptest!` runs
//! `ProptestConfig::cases` generated cases from a deterministic
//! per-test seed. There is no shrinking — a failing case reports its
//! case number and message and panics.

use rand::rngs::StdRng;
use rand::Rng;
use std::rc::Rc;

/// Per-test configuration (subset: the number of cases).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; another case is drawn.
    Reject,
}

/// Source of randomness handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// The underlying random generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of test values (no shrinking in this stub).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: unrolls `f` `depth` times over `self` as the
    /// leaf case (the `desired_size` / `expected_branch_size` hints are
    /// accepted for API compatibility and ignored).
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut s = self.boxed();
        for _ in 0..depth {
            s = f(s).boxed();
        }
        s
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |runner: &mut TestRunner| {
            self.gen_value(runner)
        }))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRunner) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, runner: &mut TestRunner) -> V {
        (self.0)(runner)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.gen_value(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn gen_value(&self, runner: &mut TestRunner) -> Self::Value {
        (self.0.gen_value(runner),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn gen_value(&self, runner: &mut TestRunner) -> Self::Value {
        (self.0.gen_value(runner), self.1.gen_value(runner))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn gen_value(&self, runner: &mut TestRunner) -> Self::Value {
        (
            self.0.gen_value(runner),
            self.1.gen_value(runner),
            self.2.gen_value(runner),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn gen_value(&self, runner: &mut TestRunner) -> Self::Value {
        (
            self.0.gen_value(runner),
            self.1.gen_value(runner),
            self.2.gen_value(runner),
            self.3.gen_value(runner),
        )
    }
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds a weighted union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn gen_value(&self, runner: &mut TestRunner) -> V {
        let mut pick = runner.rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.gen_value(runner);
            }
            pick -= *w as u64;
        }
        unreachable!("weights changed mid-draw")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        runner.rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// `any::<T>()` — an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Element-count specification accepted by [`vec()`](fn@vec).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            let (min, max_incl) = r.into_inner();
            SizeRange { min, max_incl }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, runner: &mut TestRunner) -> Self::Value {
            let n = runner.rng().gen_range(self.size.min..=self.size.max_incl);
            (0..n).map(|_| self.elem.gen_value(runner)).collect()
        }
    }

    /// `prop::collection::vec(strategy, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Test-loop driver used by the `proptest!` macro expansion.
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRunner};
    use rand::SeedableRng;

    fn seed_for(name: &str, case: u64) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `config.cases` accepted cases of `f`; panics on the first
    /// failing case. Rejections (`prop_assume!`) draw a replacement case,
    /// up to a bounded number of attempts; exhausting the budget panics
    /// (like proptest's "too many global rejects") so a property can
    /// never silently become vacuous.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut f: F)
    where
        F: FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
    {
        let mut accepted: u64 = 0;
        let max_attempts = (config.cases as u64).saturating_mul(20).max(20);
        let mut attempt: u64 = 0;
        while accepted < config.cases as u64 && attempt < max_attempts {
            let mut runner = TestRunner {
                rng: rand::rngs::StdRng::seed_from_u64(seed_for(name, attempt)),
            };
            attempt += 1;
            match f(&mut runner) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {attempt} \
                         (seed {}): {msg}",
                        seed_for(name, attempt - 1)
                    );
                }
            }
        }
        if accepted < config.cases as u64 {
            panic!(
                "proptest `{name}`: too many rejects — only {accepted} of \
                 {} cases accepted after {attempt} attempts \
                 (loosen prop_assume! or the generators)",
                config.cases
            );
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Rejects the current case (a replacement case is drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)
        ($($var:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)+), move |($($var,)+)| $body)
        }
    };
}

/// Declares property tests; see the crate docs for the supported shape.
/// The `#[test]` attribute written by the caller is captured together
/// with any doc comments and re-emitted on the generated zero-argument
/// test function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($var:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::runner::run(stringify!($name), &config, |runner| {
                    $(let $var = $crate::Strategy::gen_value(&($strat), runner);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($var:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($var in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(v in prop::collection::vec(0..10usize, 1..4)) -> (usize, usize) {
            (v.len(), v.iter().sum())
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0..5usize, w in 5u32..45, b in any::<bool>()) {
            prop_assert!(x < 5);
            prop_assert!((5..45).contains(&w));
            let _ = b;
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0..3usize, 0..3)) {
            prop_assert!(v.len() < 3);
        }

        #[test]
        fn composed(p in pair()) {
            prop_assert!(p.0 >= 1 && p.0 <= 3);
            prop_assert!(p.1 <= 9 * p.0, "sum {} too large", p.1);
        }

        #[test]
        fn assume_rejects(x in 0..10usize) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf(#[allow(dead_code)] usize),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 1,
                T::Node(k) => 1 + k.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0..4usize).prop_map(T::Leaf);
        let strat = leaf.prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                2 => (0..4usize).prop_map(T::Leaf),
                1 => crate::collection::vec(inner, 1..3).prop_map(T::Node),
            ]
        });
        crate::runner::run(
            "oneof_and_recursive",
            &ProptestConfig::with_cases(128),
            |r| {
                let t = strat.gen_value(r);
                if depth(&t) > 4 {
                    return Err(TestCaseError::Fail(format!("too deep: {t:?}")));
                }
                Ok(())
            },
        );
    }
}
