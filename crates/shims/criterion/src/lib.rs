//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `bench_with_input`,
//! `bench_function`, `finish`), [`BenchmarkId`], [`Bencher::iter`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples whose iteration count is auto-calibrated so a
//! sample takes roughly `TARGET_SAMPLE`. Mean / min / max per-iteration
//! times are printed to stdout — no plots, no statistics files.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one measured sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Identifier of one benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("direct", 200)` → `direct/200`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations and records the
    /// total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure labeled by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, self.sample_size, f);
        self
    }

    /// Ends the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Calibrate: start at 1 iteration and grow until a sample is long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64()).ceil() as u64
        };
        iters = iters.saturating_mul(grow.clamp(2, 16)).min(1 << 20);
    }
    // Measure.
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{id:<44} mean {:>12}  min {:>12}  max {:>12}  ({iters} iters × {samples} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_print() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }
}
