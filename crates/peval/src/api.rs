//! High-level evaluation API used by the rewriting engine and examples.

use crate::dp;
use pxv_pxml::{NodeId, PDocument};
use pxv_tpq::TreePattern;

/// `q(P̂)`: all node/probability pairs with positive probability, sorted by
/// node id (the probabilistic query semantics of §2, "Querying
/// p-documents").
///
/// Candidates are found on the maximal world (TP is monotone), then each
/// candidate's probability is computed by a pinned run of the DP.
pub fn eval_tp(pdoc: &PDocument, q: &TreePattern) -> Vec<(NodeId, f64)> {
    let max = dp::max_world(pdoc);
    let candidates = pxv_tpq::embed::eval(q, &max);
    let mut out = Vec::with_capacity(candidates.len());
    for n in candidates {
        let p = eval_tp_at(pdoc, q, n);
        if p > 0.0 {
            out.push((n, p));
        }
    }
    out
}

/// `Pr(n ∈ q(P))` for one target node.
pub fn eval_tp_at(pdoc: &PDocument, q: &TreePattern, n: NodeId) -> f64 {
    if !pdoc.contains(n) {
        return 0.0;
    }
    let (pinned_doc, label) = dp::pin_node(pdoc, n, 0);
    let pinned_q = dp::pin_pattern(q, label);
    dp::boolean_probability(&pinned_doc, &pinned_q)
}

/// `Pr(n ∈ (q1 ∩ … ∩ qm)(P))`: all parts select `n` simultaneously.
pub fn eval_intersection_at(pdoc: &PDocument, parts: &[TreePattern], n: NodeId) -> f64 {
    if parts.is_empty() || !pdoc.contains(n) {
        return if pdoc.contains(n) {
            pdoc.appearance_probability(n)
        } else {
            0.0
        };
    }
    let (pinned_doc, label) = dp::pin_node(pdoc, n, 0);
    let pinned: Vec<TreePattern> = parts.iter().map(|q| dp::pin_pattern(q, label)).collect();
    dp::boolean_conjunction_probability(&pinned_doc, &pinned)
}

/// Joint probability of several (pattern, target) pairs holding at once:
/// `Pr(⋀_i  n_i ∈ q_i(P))`. Each pattern is pinned at its own target.
pub fn joint_probability(pdoc: &PDocument, specs: &[(&TreePattern, NodeId)]) -> f64 {
    if specs.is_empty() {
        return 1.0;
    }
    // Pin each distinct target once; reuse pins across patterns.
    let mut doc = pdoc.clone();
    let mut pins: Vec<(NodeId, pxv_pxml::Label)> = Vec::new();
    let mut pinned = Vec::with_capacity(specs.len());
    for &(q, n) in specs {
        if !pdoc.contains(n) {
            return 0.0;
        }
        let label = match pins.iter().find(|&&(m, _)| m == n) {
            Some(&(_, l)) => l,
            None => {
                let l = dp::pin_label(pins.len());
                doc.add_ordinary(n, l, 1.0);
                pins.push((n, l));
                l
            }
        };
        pinned.push(dp::pin_pattern(q, label));
    }
    dp::boolean_conjunction_probability(&doc, &pinned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::examples_paper::{fig2_pper, fig5_p1, fig5_p2, fig5_p3, fig5_p4};
    use pxv_pxml::examples_paper::{fig5_chain_nodes, fig5_p1_b, fig5_p2_b};
    use pxv_tpq::parse::parse_pattern;

    fn q(s: &str) -> TreePattern {
        parse_pattern(s).unwrap()
    }

    #[test]
    fn example_6_via_dp() {
        let pper = fig2_pper();
        let n5 = NodeId(5);
        let n7 = NodeId(7);
        assert!(
            (eval_tp_at(&pper, &q("IT-personnel//person/bonus[laptop]"), n5) - 0.9).abs() < 1e-9
        );
        assert!(
            (eval_tp_at(&pper, &q("IT-personnel//person[name/Rick]/bonus"), n5) - 0.75).abs()
                < 1e-9
        );
        assert!(
            (eval_tp_at(
                &pper,
                &q("IT-personnel//person[name/Rick]/bonus[laptop]"),
                n5
            ) - 0.675)
                .abs()
                < 1e-9
        );
        let v2 = q("IT-personnel//person/bonus");
        let ans = eval_tp(&pper, &v2);
        assert_eq!(ans, vec![(n5, 1.0), (n7, 1.0)]);
    }

    #[test]
    fn example_11_probabilities() {
        // q = a/b[c]: 0.325 on P1, 0.5 on P2.
        let query = q("a/b[c]");
        assert!((eval_tp_at(&fig5_p1(), &query, fig5_p1_b()) - 0.325).abs() < 1e-9);
        assert!((eval_tp_at(&fig5_p2(), &query, fig5_p2_b()) - 0.5).abs() < 1e-9);
        // v = a[.//c]/b: 0.65 on both.
        let view = q("a[.//c]/b");
        assert!((eval_tp_at(&fig5_p1(), &view, fig5_p1_b()) - 0.65).abs() < 1e-9);
        assert!((eval_tp_at(&fig5_p2(), &view, fig5_p2_b()) - 0.65).abs() < 1e-9);
    }

    #[test]
    fn example_12_probabilities() {
        let (nc1, nc2, nd) = fig5_chain_nodes();
        let query = q("a//b[e]/c/b/c//d");
        let view = q("a//b[e]/c/b/c");
        assert!((eval_tp_at(&fig5_p3(), &query, nd) - 0.288).abs() < 1e-9);
        assert!((eval_tp_at(&fig5_p4(), &query, nd) - 0.264).abs() < 1e-9);
        // v selects nc1 with 0.12 and nc2 with 0.24 in both documents.
        for pdoc in [fig5_p3(), fig5_p4()] {
            assert!((eval_tp_at(&pdoc, &view, nc1) - 0.12).abs() < 1e-9);
            assert!((eval_tp_at(&pdoc, &view, nc2) - 0.24).abs() < 1e-9);
        }
    }

    #[test]
    fn dp_agrees_with_exact_on_examples() {
        let pper = fig2_pper();
        for pat in [
            "IT-personnel//person/bonus[laptop]",
            "IT-personnel//person[name/Rick]/bonus[laptop]",
            "IT-personnel//person/bonus/pda",
            "IT-personnel//person/bonus[pda/50]",
            "IT-personnel//bonus//44",
        ] {
            let query = q(pat);
            let dp_ans = eval_tp(&pper, &query);
            let exact = crate::exact::eval_tp_exact(&pper, &query);
            assert_eq!(dp_ans.len(), exact.len(), "{pat}");
            for ((n1, p1), (n2, p2)) in dp_ans.iter().zip(&exact) {
                assert_eq!(n1, n2, "{pat}");
                assert!((p1 - p2).abs() < 1e-9, "{pat}: {p1} vs {p2}");
            }
        }
    }

    #[test]
    fn intersection_at_node() {
        let pper = fig2_pper();
        let parts = vec![
            q("IT-personnel//person[name/Rick]/bonus"),
            q("IT-personnel//person/bonus[laptop]"),
        ];
        // Conjunction at n5 = qRBON's probability.
        let pr = eval_intersection_at(&pper, &parts, NodeId(5));
        assert!((pr - 0.675).abs() < 1e-9);
        let exact = crate::exact::eval_intersection_at_exact(&pper, &parts, NodeId(5));
        assert!((pr - exact).abs() < 1e-9);
    }

    #[test]
    fn joint_probability_different_targets() {
        let p3 = fig5_p3();
        let (nc1, nc2, _) = fig5_chain_nodes();
        let view = q("a//b[e]/c/b/c");
        // Joint: view selects both nc1 and nc2 = E1 ∧ E2 ∧ chain = .3*.6*.4.
        let joint = joint_probability(&p3, &[(&view, nc1), (&view, nc2)]);
        assert!((joint - 0.072).abs() < 1e-9, "joint = {joint}");
    }

    #[test]
    fn empty_parts_and_missing_nodes() {
        let pper = fig2_pper();
        assert_eq!(
            eval_tp_at(&pper, &q("IT-personnel/person"), NodeId(999)),
            0.0
        );
        let pr = eval_intersection_at(&pper, &[], NodeId(8));
        assert!((pr - 0.75).abs() < 1e-12); // appearance probability of Rick
    }
}
