//! High-level evaluation API used by the rewriting engine and examples.

use crate::dp;
use pxv_pxml::{NodeId, PDocument};
use pxv_tpq::TreePattern;

/// `q(P̂)`: all node/probability pairs with positive probability, sorted by
/// node id (the probabilistic query semantics of §2, "Querying
/// p-documents").
///
/// Candidates are found on the maximal world (TP is monotone), then each
/// candidate's probability is computed by a pinned run of the DP.
pub fn eval_tp(pdoc: &PDocument, q: &TreePattern) -> Vec<(NodeId, f64)> {
    let mut span = pxv_obs::Span::enter("eval_tp");
    let max = dp::max_world(pdoc);
    let candidates = pxv_tpq::embed::eval(q, &max);
    span.record("candidates", candidates.len() as u64);
    let mut out = Vec::with_capacity(candidates.len());
    for n in candidates {
        let p = eval_tp_at(pdoc, q, n);
        if p > 0.0 {
            out.push((n, p));
        }
    }
    span.record("answers", out.len() as u64);
    out
}

/// `Pr(n ∈ q(P))` for one target node.
pub fn eval_tp_at(pdoc: &PDocument, q: &TreePattern, n: NodeId) -> f64 {
    if !pdoc.contains(n) {
        return 0.0;
    }
    let (pinned_doc, label) = dp::pin_node(pdoc, n, 0);
    let pinned_q = dp::pin_pattern(q, label);
    dp::boolean_probability(&pinned_doc, &pinned_q)
}

/// The *scope* of a candidate under an anchor: the sub-p-document induced
/// by the root path of `anchor` plus the whole subtree below it, with
/// everything else marginalized out. Node ids, child order, kinds and
/// edge probabilities inside the scope are preserved verbatim; above the
/// anchor each node keeps only its root-path child (for `mux`/`ind` the
/// dropped siblings' mass flows where the generative semantics already
/// sends it; an `exp` node's subset distribution collapses to the kept
/// child's marginal, accumulated in the distribution's original order so
/// the construction is deterministic).
///
/// Pruning is an exact marginalization for any event that only depends on
/// nodes inside the scope: distinct subtrees of a p-document draw their
/// choices independently (§2), so removing subtrees no embedding can
/// touch leaves the event's probability unchanged. This is what
/// [`eval_tp_at_anchored`] relies on — and because the pruned document is
/// a *deterministic function* of the scope's contents, two documents that
/// agree on a candidate's scope yield **bit-identical** probabilities,
/// the property the rewrite layer's incremental view maintenance is built
/// on.
pub fn prune_to_anchor(pdoc: &PDocument, anchor: NodeId) -> PDocument {
    if anchor == pdoc.root() {
        return pdoc.clone();
    }
    let path = pdoc.root_path(anchor);
    let root = path[0];
    let mut out = PDocument::with_root_id(pdoc.label(root).expect("ordinary root"), root);
    for w in path.windows(2) {
        let (a, b) = (w[0], w[1]);
        let prob = pdoc.child_prob(a, b);
        match pdoc.kind(b) {
            pxv_pxml::PKind::Ordinary(l) => out.add_ordinary_with_id(a, *l, prob, b),
            k => out.add_dist_with_id(a, k.clone(), prob, b),
        }
        // A pruned `exp` node keeps one child: collapse its subset
        // distribution to that child's marginal, summing in the original
        // entry order (any fixed order works; it just must be a function
        // of the distribution alone).
        if let pxv_pxml::PKind::Exp(dist) = pdoc.kind(a) {
            let idx = pdoc
                .children(a)
                .iter()
                .position(|&c| c == b)
                .expect("path child");
            let mut kept = 0.0;
            let mut dropped = 0.0;
            for &(mask, p) in dist {
                if mask & (1 << idx) != 0 {
                    kept += p;
                } else {
                    dropped += p;
                }
            }
            out.set_exp_distribution(a, vec![(0b1, kept), (0b0, dropped)]);
        }
    }
    // Below the anchor: the subtree verbatim (ids, kinds, probabilities,
    // full exp distributions).
    let mut stack = vec![anchor];
    while let Some(m) = stack.pop() {
        for &c in pdoc.children(m) {
            let prob = pdoc.child_prob(m, c);
            match pdoc.kind(c) {
                pxv_pxml::PKind::Ordinary(l) => out.add_ordinary_with_id(m, *l, prob, c),
                k => out.add_dist_with_id(m, k.clone(), prob, c),
            }
            stack.push(c);
        }
    }
    out
}

/// `Pr(n ∈ q(P))` computed over the pruned scope of `anchor` (an ordinary
/// ancestor-or-self of `n`) instead of the whole document — see
/// [`prune_to_anchor`] for when this is exact. The caller must pick an
/// anchor whose scope contains every possible witness of `n`'s matches;
/// `TreePattern::first_predicate_depth` in `pxv-tpq` gives the deepest
/// generally-safe choice.
pub fn eval_tp_at_anchored(pdoc: &PDocument, q: &TreePattern, n: NodeId, anchor: NodeId) -> f64 {
    debug_assert!(
        pdoc.is_ancestor_or_self(anchor, n),
        "anchor {anchor} must be an ancestor of candidate {n}"
    );
    let pruned = prune_to_anchor(pdoc, anchor);
    eval_tp_at(&pruned, q, n)
}

/// `Pr(n ∈ (q1 ∩ … ∩ qm)(P))`: all parts select `n` simultaneously.
pub fn eval_intersection_at(pdoc: &PDocument, parts: &[TreePattern], n: NodeId) -> f64 {
    if parts.is_empty() || !pdoc.contains(n) {
        return if pdoc.contains(n) {
            pdoc.appearance_probability(n)
        } else {
            0.0
        };
    }
    let (pinned_doc, label) = dp::pin_node(pdoc, n, 0);
    let pinned: Vec<TreePattern> = parts.iter().map(|q| dp::pin_pattern(q, label)).collect();
    dp::boolean_conjunction_probability(&pinned_doc, &pinned)
}

/// Joint probability of several (pattern, target) pairs holding at once:
/// `Pr(⋀_i  n_i ∈ q_i(P))`. Each pattern is pinned at its own target.
pub fn joint_probability(pdoc: &PDocument, specs: &[(&TreePattern, NodeId)]) -> f64 {
    if specs.is_empty() {
        return 1.0;
    }
    // Pin each distinct target once; reuse pins across patterns.
    let mut doc = pdoc.clone();
    let mut pins: Vec<(NodeId, pxv_pxml::Label)> = Vec::new();
    let mut pinned = Vec::with_capacity(specs.len());
    for &(q, n) in specs {
        if !pdoc.contains(n) {
            return 0.0;
        }
        let label = match pins.iter().find(|&&(m, _)| m == n) {
            Some(&(_, l)) => l,
            None => {
                let l = dp::pin_label(pins.len());
                doc.add_ordinary(n, l, 1.0);
                pins.push((n, l));
                l
            }
        };
        pinned.push(dp::pin_pattern(q, label));
    }
    dp::boolean_conjunction_probability(&doc, &pinned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::examples_paper::{fig2_pper, fig5_p1, fig5_p2, fig5_p3, fig5_p4};
    use pxv_pxml::examples_paper::{fig5_chain_nodes, fig5_p1_b, fig5_p2_b};
    use pxv_tpq::parse::parse_pattern;

    fn q(s: &str) -> TreePattern {
        parse_pattern(s).unwrap()
    }

    #[test]
    fn example_6_via_dp() {
        let pper = fig2_pper();
        let n5 = NodeId(5);
        let n7 = NodeId(7);
        assert!(
            (eval_tp_at(&pper, &q("IT-personnel//person/bonus[laptop]"), n5) - 0.9).abs() < 1e-9
        );
        assert!(
            (eval_tp_at(&pper, &q("IT-personnel//person[name/Rick]/bonus"), n5) - 0.75).abs()
                < 1e-9
        );
        assert!(
            (eval_tp_at(
                &pper,
                &q("IT-personnel//person[name/Rick]/bonus[laptop]"),
                n5
            ) - 0.675)
                .abs()
                < 1e-9
        );
        let v2 = q("IT-personnel//person/bonus");
        let ans = eval_tp(&pper, &v2);
        assert_eq!(ans, vec![(n5, 1.0), (n7, 1.0)]);
    }

    #[test]
    fn example_11_probabilities() {
        // q = a/b[c]: 0.325 on P1, 0.5 on P2.
        let query = q("a/b[c]");
        assert!((eval_tp_at(&fig5_p1(), &query, fig5_p1_b()) - 0.325).abs() < 1e-9);
        assert!((eval_tp_at(&fig5_p2(), &query, fig5_p2_b()) - 0.5).abs() < 1e-9);
        // v = a[.//c]/b: 0.65 on both.
        let view = q("a[.//c]/b");
        assert!((eval_tp_at(&fig5_p1(), &view, fig5_p1_b()) - 0.65).abs() < 1e-9);
        assert!((eval_tp_at(&fig5_p2(), &view, fig5_p2_b()) - 0.65).abs() < 1e-9);
    }

    #[test]
    fn example_12_probabilities() {
        let (nc1, nc2, nd) = fig5_chain_nodes();
        let query = q("a//b[e]/c/b/c//d");
        let view = q("a//b[e]/c/b/c");
        assert!((eval_tp_at(&fig5_p3(), &query, nd) - 0.288).abs() < 1e-9);
        assert!((eval_tp_at(&fig5_p4(), &query, nd) - 0.264).abs() < 1e-9);
        // v selects nc1 with 0.12 and nc2 with 0.24 in both documents.
        for pdoc in [fig5_p3(), fig5_p4()] {
            assert!((eval_tp_at(&pdoc, &view, nc1) - 0.12).abs() < 1e-9);
            assert!((eval_tp_at(&pdoc, &view, nc2) - 0.24).abs() < 1e-9);
        }
    }

    #[test]
    fn dp_agrees_with_exact_on_examples() {
        let pper = fig2_pper();
        for pat in [
            "IT-personnel//person/bonus[laptop]",
            "IT-personnel//person[name/Rick]/bonus[laptop]",
            "IT-personnel//person/bonus/pda",
            "IT-personnel//person/bonus[pda/50]",
            "IT-personnel//bonus//44",
        ] {
            let query = q(pat);
            let dp_ans = eval_tp(&pper, &query);
            let exact = crate::exact::eval_tp_exact(&pper, &query);
            assert_eq!(dp_ans.len(), exact.len(), "{pat}");
            for ((n1, p1), (n2, p2)) in dp_ans.iter().zip(&exact) {
                assert_eq!(n1, n2, "{pat}");
                assert!((p1 - p2).abs() < 1e-9, "{pat}: {p1} vs {p2}");
            }
        }
    }

    #[test]
    fn intersection_at_node() {
        let pper = fig2_pper();
        let parts = vec![
            q("IT-personnel//person[name/Rick]/bonus"),
            q("IT-personnel//person/bonus[laptop]"),
        ];
        // Conjunction at n5 = qRBON's probability.
        let pr = eval_intersection_at(&pper, &parts, NodeId(5));
        assert!((pr - 0.675).abs() < 1e-9);
        let exact = crate::exact::eval_intersection_at_exact(&pper, &parts, NodeId(5));
        assert!((pr - exact).abs() < 1e-9);
    }

    #[test]
    fn joint_probability_different_targets() {
        let p3 = fig5_p3();
        let (nc1, nc2, _) = fig5_chain_nodes();
        let view = q("a//b[e]/c/b/c");
        // Joint: view selects both nc1 and nc2 = E1 ∧ E2 ∧ chain = .3*.6*.4.
        let joint = joint_probability(&p3, &[(&view, nc1), (&view, nc2)]);
        assert!((joint - 0.072).abs() < 1e-9, "joint = {joint}");
    }

    /// The pruned scope is an exact marginalization: evaluating a
    /// candidate under any valid anchor agrees with the full-document DP.
    #[test]
    fn anchored_evaluation_agrees_with_full_dp() {
        let pper = fig2_pper();
        let n5 = NodeId(5);
        // qBON's witnesses (the bonus predicate, pin included) live under
        // n5 itself, so every ancestor works as an anchor.
        let query = q("IT-personnel//person/bonus[laptop]");
        let full = eval_tp_at(&pper, &query, n5);
        for anchor in pper.root_path(n5) {
            if pper.label(anchor).is_none() {
                continue; // anchors are ordinary nodes
            }
            let anchored = eval_tp_at_anchored(&pper, &query, n5, anchor);
            assert!(
                (anchored - full).abs() < 1e-12,
                "anchor {anchor}: {anchored} vs {full}"
            );
        }
        // Predicate above the output: anchor at the person level.
        let rick = q("IT-personnel//person[name/Rick]/bonus");
        let person = pper.ordinary_ancestor(n5).unwrap();
        let full = eval_tp_at(&pper, &rick, n5);
        let anchored = eval_tp_at_anchored(&pper, &rick, n5, person);
        assert!((anchored - full).abs() < 1e-12, "{anchored} vs {full}");
    }

    /// Pruning through every distributional kind (mux chain mass, ind,
    /// det, exp marginal collapse) preserves candidate probabilities.
    #[test]
    fn prune_marginalizes_every_kind() {
        let p = pxv_pxml::text::parse_pdocument(
            "r#0[mux#1(0.4: a#2[b#3], 0.3: z#4), ind#5(0.7: c#6[d#7]), det#8(e#9[f#10])]",
        )
        .unwrap();
        for (pat, n, anchor) in [
            ("r//b", NodeId(3), NodeId(2)),
            ("r/a/b", NodeId(3), NodeId(2)),
            ("r//d", NodeId(7), NodeId(6)),
            ("r//f", NodeId(10), NodeId(9)),
        ] {
            let query = q(pat);
            let full = eval_tp_at(&p, &query, n);
            let anchored = eval_tp_at_anchored(&p, &query, n, anchor);
            assert!(
                (anchored - full).abs() < 1e-12,
                "{pat} at {n}: {anchored} vs {full}"
            );
            let pruned = prune_to_anchor(&p, anchor);
            assert!(pruned.validate().is_ok(), "{pat}: pruned doc validates");
            assert!(pruned.len() < p.len(), "{pat}: pruning actually prunes");
        }
        // Exp on the root path: the kept child's marginal must survive
        // the collapse.
        let mut e = PDocument::new(pxv_pxml::Label::new("r"));
        let exp = e.add_dist(e.root(), pxv_pxml::PKind::Exp(Vec::new()), 1.0);
        let a = e.add_ordinary(exp, pxv_pxml::Label::new("a"), 1.0);
        let _b = e.add_ordinary(exp, pxv_pxml::Label::new("b"), 1.0);
        let c = e.add_ordinary(a, pxv_pxml::Label::new("c"), 1.0);
        e.set_exp_distribution(exp, vec![(0b11, 0.5), (0b01, 0.25), (0b10, 0.25)]);
        let query = q("r/a/c");
        let full = eval_tp_at(&e, &query, c);
        let anchored = eval_tp_at_anchored(&e, &query, c, a);
        assert!((full - 0.75).abs() < 1e-12);
        assert!((anchored - full).abs() < 1e-12);
    }

    /// Bit-identity contract: two documents that agree on a candidate's
    /// scope produce bit-identical anchored probabilities, however much
    /// they differ outside it.
    #[test]
    fn anchored_evaluation_is_bitwise_scope_local() {
        let before =
            pxv_pxml::text::parse_pdocument("r#0[mux#1(0.4: a#2[b#3]), ind#4(0.7: x#5[y#6])]")
                .unwrap();
        // Same scope for candidate b#3 (root path + subtree of a#2);
        // wildly different sibling content.
        let after = pxv_pxml::text::parse_pdocument(
            "r#0[mux#1(0.4: a#2[b#3]), ind#4(0.25: x#5[mux#7(0.125: w#8)])]",
        )
        .unwrap();
        let query = q("r/a[b]/b");
        let p1 = eval_tp_at_anchored(&before, &query, NodeId(3), NodeId(2));
        let p2 = eval_tp_at_anchored(&after, &query, NodeId(3), NodeId(2));
        assert_eq!(p1.to_bits(), p2.to_bits(), "bit-identical, not approximate");
    }

    #[test]
    fn empty_parts_and_missing_nodes() {
        let pper = fig2_pper();
        assert_eq!(
            eval_tp_at(&pper, &q("IT-personnel/person"), NodeId(999)),
            0.0
        );
        let pr = eval_intersection_at(&pper, &[], NodeId(8));
        assert!((pr - 0.75).abs() < 1e-12); // appearance probability of Rick
    }
}
