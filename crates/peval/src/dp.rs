//! Polynomial (data-complexity) evaluation of tree patterns over
//! p-documents: the dynamic program standing in for the evaluation engine
//! of Kimelfeld et al. \[22\] that the paper uses as a black box.
//!
//! ## Idea
//!
//! For a *conjunction* of Boolean patterns `{q1, …, qm}` (a TP∩ after
//! output pinning) give every query node `x` a pair of Boolean events at
//! each ordinary p-document node `v`:
//!
//! * `A_v(x)`: the subpattern rooted at `x` embeds with `x ↦ v`,
//! * `B_v(x)`: it embeds with `x` mapped to `v` or a surviving proper
//!   descendant of `v`.
//!
//! Distinct subtrees of a p-document use distinct distributional nodes, so
//! sibling subtrees are probabilistically independent and their joint event
//! distributions combine by sparse OR-convolution; `mux`/`ind`/`det`/`exp`
//! nodes mix their children's distributions according to the generative
//! process of §2. One bottom-up pass yields the exact probability that all
//! patterns match. Complexity: linear in `|P̂|` for a fixed conjunction,
//! exponential in query size in the worst case — the envelope the paper
//! states for \[22\] (PTime data complexity, intractable query complexity).
//!
//! `Pr(n ∈ q(P))` reduces to a Boolean match by *pinning*: attach a fresh
//! `⟨t⟩`-labeled child below `n` and extend `out(q)` with a `/`-child
//! `⟨t⟩`; the pinned pattern matches exactly when some embedding sends
//! `out(q)` to `n`.

use pxv_pxml::{Document, Label, NodeId, PDocument, PKind};
use pxv_tpq::pattern::{Axis, QNodeId, TreePattern};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Joint event state: bit `2j` = `A(x_j)`, bit `2j+1` = `B(x_j)` over
/// global query-node indices `j`.
type State = u128;

/// Deterministic hasher for [`Dist`] keys. Float accumulation in this
/// module iterates `Dist` maps (OR-convolution, mixing), so iteration
/// order — and with it the ULP rounding of the sums — must not vary
/// between map instances. The std `RandomState` seeds every map
/// differently, which made two evaluations of the same query differ in
/// the last bits; the serving layer's bit-identical answers forbid that.
#[derive(Default)]
struct StateHasher(u64);

impl Hasher for StateHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u128(&mut self, v: u128) {
        // Fibonacci-style mix of both halves; states are sparse bitmasks,
        // so the multiply spreads low-bit patterns across the table.
        for half in [v as u64, (v >> 64) as u64] {
            self.0 = (self.0 ^ half).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            self.0 ^= self.0 >> 32;
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Sparse distribution over states (deterministic iteration order given
/// the same insertion history — see [`StateHasher`]).
type Dist = HashMap<State, f64, BuildHasherDefault<StateHasher>>;

/// A conjunction of Boolean patterns, with precomputed global bit indices.
struct Conjunction<'a> {
    patterns: &'a [TreePattern],
    /// Global index of pattern `i` node `x` = `offset[i] + x.0`.
    offsets: Vec<u32>,
    /// For every global node index: (pattern, node id).
    nodes: Vec<(usize, QNodeId)>,
}

impl<'a> Conjunction<'a> {
    fn new(patterns: &'a [TreePattern]) -> Conjunction<'a> {
        let mut offsets = Vec::with_capacity(patterns.len());
        let mut nodes = Vec::new();
        let mut total = 0u32;
        for (i, p) in patterns.iter().enumerate() {
            offsets.push(total);
            for x in p.node_ids() {
                nodes.push((i, x));
            }
            total += p.len() as u32;
        }
        assert!(
            total <= 64,
            "conjunction too large for the 128-bit state encoding ({total} query nodes)"
        );
        Conjunction {
            patterns,
            offsets,
            nodes,
        }
    }

    fn gid(&self, pattern: usize, x: QNodeId) -> u32 {
        self.offsets[pattern] + x.0
    }

    fn a_bit(&self, g: u32) -> State {
        1u128 << (2 * g)
    }

    fn b_bit(&self, g: u32) -> State {
        1u128 << (2 * g + 1)
    }
}

/// OR-convolution of two independent event distributions.
fn or_convolve(d1: &Dist, d2: &Dist) -> Dist {
    if d1.len() == 1 {
        if let Some((&0, &p)) = d1.iter().next() {
            if (p - 1.0).abs() < 1e-15 {
                return d2.clone();
            }
        }
    }
    let mut out = dist_with_capacity(d1.len() * d2.len());
    for (&s1, &p1) in d1 {
        for (&s2, &p2) in d2 {
            *out.entry(s1 | s2).or_insert(0.0) += p1 * p2;
        }
    }
    out
}

/// A `Dist` with capacity `n` and the deterministic hasher.
fn dist_with_capacity(n: usize) -> Dist {
    Dist::with_capacity_and_hasher(n, Default::default())
}

fn delta_zero() -> Dist {
    let mut d = dist_with_capacity(1);
    d.insert(0, 1.0);
    d
}

/// Mixes `d` with the empty distribution: kept with probability `p`.
fn keep_with(d: Dist, p: f64) -> Dist {
    let mut out = dist_with_capacity(d.len() + 1);
    for (s, q) in d {
        *out.entry(s).or_insert(0.0) += p * q;
    }
    *out.entry(0).or_insert(0.0) += 1.0 - p;
    out
}

/// Computes the (A, B) event distribution contributed by p-document node
/// `n` to its closest ordinary ancestor.
fn message(pdoc: &PDocument, conj: &Conjunction<'_>, n: NodeId) -> Dist {
    match pdoc.kind(n) {
        PKind::Ordinary(label) => ordinary_message(pdoc, conj, n, *label),
        PKind::Mux => {
            let mut out = Dist::default();
            let mut mass = 0.0;
            for &c in pdoc.children(n) {
                let p = pdoc.child_prob(n, c);
                mass += p;
                for (s, q) in message(pdoc, conj, c) {
                    *out.entry(s).or_insert(0.0) += p * q;
                }
            }
            *out.entry(0).or_insert(0.0) += (1.0 - mass).max(0.0);
            out
        }
        PKind::Ind => {
            let mut acc = delta_zero();
            for &c in pdoc.children(n) {
                let p = pdoc.child_prob(n, c);
                let msg = keep_with(message(pdoc, conj, c), p);
                acc = or_convolve(&acc, &msg);
            }
            acc
        }
        PKind::Det => {
            let mut acc = delta_zero();
            for &c in pdoc.children(n) {
                let msg = message(pdoc, conj, c);
                acc = or_convolve(&acc, &msg);
            }
            acc
        }
        PKind::Exp(dist) => {
            let kids = pdoc.children(n).to_vec();
            let msgs: Vec<Dist> = kids.iter().map(|&c| message(pdoc, conj, c)).collect();
            let mut out = Dist::default();
            for &(mask, pm) in dist {
                let mut acc = delta_zero();
                for (i, msg) in msgs.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        acc = or_convolve(&acc, msg);
                    }
                }
                for (s, q) in acc {
                    *out.entry(s).or_insert(0.0) += pm * q;
                }
            }
            out
        }
    }
}

/// Message of an ordinary node: combine children, then derive `A_v`/`B_v`.
fn ordinary_message(pdoc: &PDocument, conj: &Conjunction<'_>, v: NodeId, label: Label) -> Dist {
    let mut children_dist = delta_zero();
    for &c in pdoc.children(v) {
        let msg = message(pdoc, conj, c);
        children_dist = or_convolve(&children_dist, &msg);
    }
    // For each aggregated child state, compute this node's (A, B) state.
    let mut out = dist_with_capacity(children_dist.len());
    for (s, p) in children_dist {
        let mut ns: State = 0;
        for (g, &(pi, x)) in conj.nodes.iter().enumerate() {
            let g = g as u32;
            let q = &conj.patterns[pi];
            debug_assert_eq!(conj.gid(pi, x), g);
            let mut a = q.label(x) == label;
            if a {
                for &y in q.children(x) {
                    let gy = conj.gid(pi, y);
                    let ok = match q.axis(y) {
                        Axis::Child => s & conj.a_bit(gy) != 0,
                        Axis::Descendant => s & conj.b_bit(gy) != 0,
                    };
                    if !ok {
                        a = false;
                        break;
                    }
                }
            }
            let b = a || (s & conj.b_bit(g) != 0);
            if a {
                ns |= conj.a_bit(g);
            }
            if b {
                ns |= conj.b_bit(g);
            }
        }
        *out.entry(ns).or_insert(0.0) += p;
    }
    out
}

/// Probability that **all** patterns match the random document (with their
/// roots at the document root).
pub fn boolean_conjunction_probability(pdoc: &PDocument, patterns: &[TreePattern]) -> f64 {
    if patterns.is_empty() {
        return 1.0;
    }
    let conj = Conjunction::new(patterns);
    let root_dist = message(pdoc, &conj, pdoc.root());
    let mut need: State = 0;
    for (i, p) in patterns.iter().enumerate() {
        need |= conj.a_bit(conj.gid(i, p.root()));
    }
    root_dist
        .iter()
        .filter(|&(&s, _)| s & need == need)
        .map(|(_, &p)| p)
        .sum()
}

/// Probability that a single Boolean pattern matches.
pub fn boolean_probability(pdoc: &PDocument, q: &TreePattern) -> f64 {
    boolean_conjunction_probability(pdoc, std::slice::from_ref(q))
}

/// Fresh pin label for a target node.
pub fn pin_label(tag: usize) -> Label {
    Label::new(&format!("\u{27e8}t{tag}\u{27e9}"))
}

/// Returns a copy of `pdoc` with a certain `⟨t⟩`-labeled ordinary child
/// below `n`, and the pin label used.
pub fn pin_node(pdoc: &PDocument, n: NodeId, tag: usize) -> (PDocument, Label) {
    let label = pin_label(tag);
    let mut p = pdoc.clone();
    p.add_ordinary(n, label, 1.0);
    (p, label)
}

/// Returns `q` extended with a `/`-child `label` under its output node.
pub fn pin_pattern(q: &TreePattern, label: Label) -> TreePattern {
    let mut p = q.clone();
    p.add_child(q.output(), Axis::Child, label);
    p
}

/// The *maximal world*: the document keeping every ordinary node.
/// TP matching is monotone, so any node selected in some world is selected
/// here — used to find answer candidates.
pub fn max_world(pdoc: &PDocument) -> Document {
    let root_label = pdoc.label(pdoc.root()).expect("root ordinary");
    let mut d = Document::with_root_id(root_label, pdoc.root());
    for n in pdoc.preorder() {
        if n == pdoc.root() {
            continue;
        }
        if let Some(l) = pdoc.label(n) {
            let parent = pdoc.ordinary_ancestor(n).expect("has ordinary ancestor");
            d.add_child_with_id(parent, l, n);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::text::parse_pdocument;
    use pxv_tpq::parse::parse_pattern;

    fn q(s: &str) -> TreePattern {
        parse_pattern(s).unwrap()
    }

    #[test]
    fn deterministic_document_probabilities() {
        let p = parse_pdocument("a[b[c], d]").unwrap();
        assert!((boolean_probability(&p, &q("a/b[c]")) - 1.0).abs() < 1e-12);
        assert!((boolean_probability(&p, &q("a/b/d")) - 0.0).abs() < 1e-12);
        assert!((boolean_probability(&p, &q("a//c")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mux_choice_probability() {
        let p = parse_pdocument("a[mux(0.3: b, 0.6: c)]").unwrap();
        assert!((boolean_probability(&p, &q("a/b")) - 0.3).abs() < 1e-12);
        assert!((boolean_probability(&p, &q("a/c")) - 0.6).abs() < 1e-12);
        // mutually exclusive
        assert!((boolean_conjunction_probability(&p, &[q("a/b"), q("a/c")]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ind_independence() {
        let p = parse_pdocument("a[ind(0.5: b, 0.4: c)]").unwrap();
        let both = boolean_conjunction_probability(&p, &[q("a/b"), q("a/c")]);
        assert!((both - 0.2).abs() < 1e-12);
    }

    #[test]
    fn correlated_conjunction_not_product() {
        // b and c behind the same mux branch: fully correlated.
        let p = parse_pdocument("a[mux(0.5: x[b, c])]").unwrap();
        let pb = boolean_probability(&p, &q("a/x/b"));
        let pc = boolean_probability(&p, &q("a/x/c"));
        let joint = boolean_conjunction_probability(&p, &[q("a/x/b"), q("a/x/c")]);
        assert!((pb - 0.5).abs() < 1e-12);
        assert!((pc - 0.5).abs() < 1e-12);
        assert!((joint - 0.5).abs() < 1e-12);
        assert!((joint - pb * pc).abs() > 0.1);
    }

    #[test]
    fn descendant_through_distributional_chain() {
        let p = parse_pdocument("a[mux(0.8: b[mux(0.5: c)])]").unwrap();
        assert!((boolean_probability(&p, &q("a//c")) - 0.4).abs() < 1e-12);
        assert!((boolean_probability(&p, &q("a//b")) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pinning_selects_one_node() {
        // Two b nodes; pin the one behind the mux.
        let p = parse_pdocument("a#0[b#1, mux#2(0.25: b#3)]").unwrap();
        let (pinned_doc, label) = pin_node(&p, NodeId(3), 0);
        let pinned_q = pin_pattern(&q("a/b"), label);
        let pr = boolean_probability(&pinned_doc, &pinned_q);
        assert!((pr - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_world_contains_all_ordinary_nodes() {
        let p = parse_pdocument("a#0[mux#1(0.5: b#2[c#3]), ind#4(0.1: d#5)]").unwrap();
        let d = max_world(&p);
        for n in [0u32, 2, 3, 5] {
            assert!(d.contains(NodeId(n)));
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.parent(NodeId(5)), Some(NodeId(0)));
    }

    #[test]
    fn matches_exact_enumeration_small() {
        let p = parse_pdocument("a[mux(0.4: b[ind(0.5: c, 0.3: d)], 0.4: b[c])]").unwrap();
        let space = p.px_space();
        for pat in ["a/b", "a/b[c]", "a/b[c][d]", "a//c", "a//d"] {
            let query = q(pat);
            let dp = boolean_probability(&p, &query);
            let exact = space.probability_where(|w| pxv_tpq::embed::matches(&query, w));
            assert!((dp - exact).abs() < 1e-9, "{pat}: dp={dp} exact={exact}");
        }
    }
}
