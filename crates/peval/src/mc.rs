//! Monte-Carlo estimation of query probabilities.
//!
//! Used as a scalable cross-check (statistical tests) and as a baseline in
//! the benches; the paper's approximate-computation pointer is [22, 33].

use pxv_pxml::{NodeId, PDocument};
use pxv_tpq::TreePattern;
use rand::Rng;

/// A Monte-Carlo estimate with a crude 95% confidence half-width.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// Point estimate of the probability.
    pub mean: f64,
    /// ±95% normal-approximation half width.
    pub half_width: f64,
    /// Number of samples drawn.
    pub samples: usize,
}

impl Estimate {
    /// Whether `p` is inside the confidence interval (with slack).
    pub fn covers(&self, p: f64) -> bool {
        (self.mean - p).abs() <= self.half_width + 1e-9
    }
}

/// Estimates `Pr(n ∈ q(P))` by sampling.
pub fn estimate_tp_at<R: Rng + ?Sized>(
    pdoc: &PDocument,
    q: &TreePattern,
    n: NodeId,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    let mut hits = 0usize;
    for _ in 0..samples {
        let w = pdoc.sample(rng);
        if w.contains(n) && pxv_tpq::embed::selects(q, &w, n) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    let half_width = 1.96 * (mean * (1.0 - mean) / samples as f64).sqrt();
    Estimate {
        mean,
        half_width,
        samples,
    }
}

/// Estimates `Pr(n ∈ ∩qi(P))` by sampling.
pub fn estimate_intersection_at<R: Rng + ?Sized>(
    pdoc: &PDocument,
    parts: &[TreePattern],
    n: NodeId,
    samples: usize,
    rng: &mut R,
) -> Estimate {
    let mut hits = 0usize;
    for _ in 0..samples {
        let w = pdoc.sample(rng);
        if w.contains(n) && parts.iter().all(|q| pxv_tpq::embed::selects(q, &w, n)) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    let half_width = 1.96 * (mean * (1.0 - mean) / samples as f64).sqrt();
    Estimate {
        mean,
        half_width,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::examples_paper::fig2_pper;
    use pxv_tpq::parse::parse_pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_matches_example_6() {
        let pper = fig2_pper();
        let qrbon = parse_pattern("IT-personnel//person[name/Rick]/bonus[laptop]").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let est = estimate_tp_at(&pper, &qrbon, NodeId(5), 20_000, &mut rng);
        assert!(est.covers(0.675), "estimate {est:?} should cover 0.675");
    }

    #[test]
    fn estimate_intersection() {
        use pxv_pxml::text::parse_pdocument;
        let p = parse_pdocument("a#0[b#1[ind#2(0.5: x#3, 0.4: y#4)]]").unwrap();
        let q1 = parse_pattern("a/b[x]").unwrap();
        let q2 = parse_pattern("a/b[y]").unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let est = estimate_intersection_at(&p, &[q1, q2], NodeId(1), 20_000, &mut rng);
        assert!(est.covers(0.2), "estimate {est:?} should cover 0.2");
    }
}
