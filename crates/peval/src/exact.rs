//! Reference evaluation by exhaustive possible-world enumeration.
//!
//! Exponential in the number of distributional nodes; serves as ground
//! truth for the dynamic program ([`crate::dp`]) and for every probability
//! function of `pxv-rewrite`.

use pxv_pxml::{NodeId, PDocument, PxSpace};
use pxv_tpq::TreePattern;
use std::collections::HashMap;

/// `q(P̂)` by enumeration: node/probability pairs with positive probability,
/// sorted by node id.
pub fn eval_tp_exact(pdoc: &PDocument, q: &TreePattern) -> Vec<(NodeId, f64)> {
    eval_tp_over_space(&pdoc.px_space(), q)
}

/// Same as [`eval_tp_exact`] but over a precomputed px-space.
pub fn eval_tp_over_space(space: &PxSpace, q: &TreePattern) -> Vec<(NodeId, f64)> {
    let mut acc: HashMap<NodeId, f64> = HashMap::new();
    for (world, p) in space.worlds() {
        for n in pxv_tpq::embed::eval(q, world) {
            *acc.entry(n).or_insert(0.0) += p;
        }
    }
    let mut out: Vec<(NodeId, f64)> = acc.into_iter().filter(|&(_, p)| p > 0.0).collect();
    out.sort_by_key(|&(n, _)| n);
    out
}

/// `Pr(n ∈ q(P))` by enumeration.
pub fn eval_tp_at_exact(pdoc: &PDocument, q: &TreePattern, n: NodeId) -> f64 {
    pdoc.px_space()
        .probability_where(|w| pxv_tpq::embed::selects(q, w, n))
}

/// `Pr(n ∈ (q1 ∩ … ∩ qm)(P))` by enumeration.
pub fn eval_intersection_at_exact(pdoc: &PDocument, parts: &[TreePattern], n: NodeId) -> f64 {
    pdoc.px_space()
        .probability_where(|w| parts.iter().all(|q| pxv_tpq::embed::selects(q, w, n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::examples_paper::fig2_pper;
    use pxv_pxml::text::parse_pdocument;
    use pxv_tpq::parse::parse_pattern;

    #[test]
    fn example_6_exact_probabilities() {
        let pper = fig2_pper();
        let n5 = NodeId(5);
        let qbon = parse_pattern("IT-personnel//person/bonus[laptop]").unwrap();
        let v1 = parse_pattern("IT-personnel//person[name/Rick]/bonus").unwrap();
        let qrbon = parse_pattern("IT-personnel//person[name/Rick]/bonus[laptop]").unwrap();
        let v2 = parse_pattern("IT-personnel//person/bonus").unwrap();

        assert!((eval_tp_at_exact(&pper, &qbon, n5) - 0.9).abs() < 1e-9);
        assert!((eval_tp_at_exact(&pper, &v1, n5) - 0.75).abs() < 1e-9);
        assert!((eval_tp_at_exact(&pper, &qrbon, n5) - 0.675).abs() < 1e-9);
        let v2_answers = eval_tp_exact(&pper, &v2);
        assert_eq!(v2_answers.len(), 2);
        for (n, p) in v2_answers {
            assert!((p - 1.0).abs() < 1e-9, "v2BON answer {n} should be certain");
        }
    }

    #[test]
    fn intersection_exact() {
        let p = parse_pdocument("a#0[b#1[ind#2(0.5: x#3, 0.4: y#4)]]").unwrap();
        let q1 = parse_pattern("a/b[x]").unwrap();
        let q2 = parse_pattern("a/b[y]").unwrap();
        let pr = eval_intersection_at_exact(&p, &[q1, q2], NodeId(1));
        assert!((pr - 0.2).abs() < 1e-12);
    }
}
