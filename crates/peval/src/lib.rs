//! # pxv-peval — probabilistic evaluation of tree patterns
//!
//! Stands in for the query-evaluation engine of Kimelfeld et al. \[22\] that
//! the paper assumes: exact probabilities of TP / TP∩ answers over
//! p-documents in polynomial time in the data (worst-case exponential in
//! the query, matching the known complexity envelope).
//!
//! * [`dp`] — the production bitmask dynamic program;
//! * [`exact`] — ground-truth evaluation by possible-world enumeration;
//! * [`mc`] — Monte-Carlo estimation;
//! * [`api`] — `eval_tp`, `eval_tp_at`, `eval_intersection_at`,
//!   `joint_probability`.

#![warn(missing_docs)]

pub mod api;
pub mod dp;
pub mod exact;
pub mod mc;

pub use api::{
    eval_intersection_at, eval_tp, eval_tp_at, eval_tp_at_anchored, joint_probability,
    prune_to_anchor,
};
