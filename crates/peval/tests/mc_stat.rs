//! Statistical cross-check of `peval::mc` against `peval::exact`: on
//! seeded inputs (deterministic RNG — no flakes), Monte-Carlo estimates
//! must fall within a 4-sigma Hoeffding-style bound of the exact
//! probability. For a Bernoulli mean over `n` samples the standard
//! deviation is at most `1/(2√n)`, so the bound is `4·1/(2√n) = 2/√n`; a
//! correct sampler leaves that band with probability < 10⁻⁴ per check,
//! and the fixed seeds pin the actual draws forever.

use pxv_peval::{exact, mc};
use pxv_pxml::examples_paper::fig2_pper;
use pxv_pxml::generators::{random_pdocument, RandomPDocConfig};
use pxv_pxml::text::parse_pdocument;
use pxv_pxml::NodeId;
use pxv_tpq::parse::parse_pattern;
use pxv_tpq::TreePattern;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SAMPLES: usize = 20_000;

/// The 4-sigma Hoeffding-style band: `2/√n` (plus float slack).
fn four_sigma(samples: usize) -> f64 {
    2.0 / (samples as f64).sqrt() + 1e-12
}

fn q(s: &str) -> TreePattern {
    parse_pattern(s).unwrap()
}

#[test]
fn tp_estimates_within_four_sigma_on_paper_example() {
    let pper = fig2_pper();
    let cases = [
        ("IT-personnel//person/bonus[laptop]", NodeId(5)),
        ("IT-personnel//person[name/Rick]/bonus", NodeId(5)),
        ("IT-personnel//person[name/Rick]/bonus[laptop]", NodeId(5)),
        ("IT-personnel//person/bonus", NodeId(7)),
    ];
    for (i, (pattern, node)) in cases.iter().enumerate() {
        let query = q(pattern);
        let exact_p = exact::eval_tp_at_exact(&pper, &query, *node);
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let est = mc::estimate_tp_at(&pper, &query, *node, SAMPLES, &mut rng);
        assert!(
            (est.mean - exact_p).abs() <= four_sigma(SAMPLES),
            "{pattern} at {node}: estimate {} vs exact {exact_p} \
             (bound {})",
            est.mean,
            four_sigma(SAMPLES)
        );
    }
}

#[test]
fn tp_estimates_within_four_sigma_on_random_documents() {
    // A two-letter alphabet keeps query/document label collisions (and so
    // positive selection probabilities) frequent.
    let labels: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
    let cfg = RandomPDocConfig {
        max_depth: 4,
        max_children: 3,
        dist_density: 0.6,
        target_size: 12,
        labels: labels.clone(),
    };
    let pat_cfg = pxv_tpq::generators::RandomPatternConfig {
        mb_len: 2,
        preds_per_node: 0.5,
        pred_depth: 1,
        labels,
        ..pxv_tpq::generators::RandomPatternConfig::default()
    };
    let mut gen_rng = StdRng::seed_from_u64(9);
    let mut checked = 0usize;
    for trial in 0..12 {
        let pdoc = random_pdocument(&cfg, &mut gen_rng);
        let query = pxv_tpq::generators::random_pattern(&pat_cfg, &mut gen_rng);
        // Check at every node the query can possibly select (bounded by
        // the tiny document size).
        for node in pdoc.ordinary_ids() {
            let exact_p = exact::eval_tp_at_exact(&pdoc, &query, node);
            if exact_p <= 0.0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(5000 + trial as u64 * 64 + node.0 as u64);
            let est = mc::estimate_tp_at(&pdoc, &query, node, SAMPLES, &mut rng);
            assert!(
                (est.mean - exact_p).abs() <= four_sigma(SAMPLES),
                "trial {trial}, {query} at {node}: estimate {} vs exact {exact_p}",
                est.mean
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 8,
        "too few positive-probability checks: {checked}"
    );
}

#[test]
fn intersection_estimates_within_four_sigma() {
    let p =
        parse_pdocument("a#0[b#1[ind#2(0.5: x#3, 0.4: y#4)], mux#5(0.3: c#6, 0.7: c#7)]").unwrap();
    let parts = vec![q("a/b[x]"), q("a/b[y]")];
    let exact_p = exact::eval_intersection_at_exact(&p, &parts, NodeId(1));
    let mut rng = StdRng::seed_from_u64(31);
    let est = mc::estimate_intersection_at(&p, &parts, NodeId(1), SAMPLES, &mut rng);
    assert!(
        (est.mean - exact_p).abs() <= four_sigma(SAMPLES),
        "intersection at b: estimate {} vs exact {exact_p}",
        est.mean
    );
    // And on the paper's example: qRBON as v1BON ∩ qBON at n5.
    let pper = fig2_pper();
    let parts = vec![
        q("IT-personnel//person[name/Rick]/bonus"),
        q("IT-personnel//person/bonus[laptop]"),
    ];
    let exact_p = exact::eval_intersection_at_exact(&pper, &parts, NodeId(5));
    let mut rng = StdRng::seed_from_u64(32);
    let est = mc::estimate_intersection_at(&pper, &parts, NodeId(5), SAMPLES, &mut rng);
    assert!(
        (est.mean - exact_p).abs() <= four_sigma(SAMPLES),
        "qRBON at n5: estimate {} vs exact {exact_p}",
        est.mean
    );
}
