//! Extra evaluation-engine coverage: `det`/`exp` distributional kinds,
//! randomized cross-validation against enumeration, and conjunction
//! semantics corner cases.

use pxv_pxml::{Label, NodeId, PDocument, PKind};
use pxv_tpq::parse::parse_pattern;
use pxv_tpq::TreePattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn q(s: &str) -> TreePattern {
    parse_pattern(s).unwrap()
}

fn l(s: &str) -> Label {
    Label::new(s)
}

#[test]
fn det_nodes_behave_as_certain_groups() {
    let mut p = PDocument::new(l("a"));
    let mux = p.add_dist(p.root(), PKind::Mux, 1.0);
    let det = p.add_dist(mux, PKind::Det, 0.5);
    p.add_ordinary(det, l("b"), 1.0);
    p.add_ordinary(det, l("c"), 1.0);
    assert!(p.validate().is_ok());
    // b and c appear together with probability 0.5.
    let joint = pxv_peval::dp::boolean_conjunction_probability(&p, &[q("a/b"), q("a/c")]);
    assert!((joint - 0.5).abs() < 1e-12);
    let single = pxv_peval::dp::boolean_probability(&p, &q("a/b"));
    assert!((single - 0.5).abs() < 1e-12);
}

#[test]
fn exp_nodes_arbitrary_correlations() {
    // Anti-correlated children: exactly one of b, c.
    let mut p = PDocument::new(l("a"));
    let exp = p.add_dist(p.root(), PKind::Exp(Vec::new()), 1.0);
    p.add_ordinary(exp, l("b"), 1.0);
    p.add_ordinary(exp, l("c"), 1.0);
    p.set_exp_distribution(exp, vec![(0b01, 0.5), (0b10, 0.5)]);
    let pb = pxv_peval::dp::boolean_probability(&p, &q("a/b"));
    let pc = pxv_peval::dp::boolean_probability(&p, &q("a/c"));
    let joint = pxv_peval::dp::boolean_conjunction_probability(&p, &[q("a/b"), q("a/c")]);
    assert!((pb - 0.5).abs() < 1e-12);
    assert!((pc - 0.5).abs() < 1e-12);
    assert!(joint.abs() < 1e-12, "mutually exclusive by construction");
}

#[test]
fn exp_against_enumeration() {
    let mut p = PDocument::new(l("a"));
    let b = p.add_ordinary(p.root(), l("b"), 1.0);
    let exp = p.add_dist(b, PKind::Exp(Vec::new()), 1.0);
    p.add_ordinary(exp, l("x"), 1.0);
    let y = p.add_ordinary(exp, l("y"), 1.0);
    p.add_ordinary(y, l("z"), 1.0);
    p.set_exp_distribution(
        exp,
        vec![(0b11, 0.2), (0b01, 0.3), (0b10, 0.4), (0b00, 0.1)],
    );
    let space = p.px_space();
    for pat in ["a/b[x]", "a/b[y/z]", "a/b[x][y]", "a//z", "a/b[x]/y"] {
        let query = q(pat);
        let dp = pxv_peval::dp::boolean_probability(&p, &query);
        let exact = space.probability_where(|w| pxv_tpq::embed::matches(&query, w));
        assert!((dp - exact).abs() < 1e-9, "{pat}: {dp} vs {exact}");
    }
}

/// Random p-documents with all four distributional kinds, validated
/// against enumeration for a battery of queries.
#[test]
fn randomized_all_kinds_cross_validation() {
    let mut rng = StdRng::seed_from_u64(2024);
    let labels = ["a", "b", "c"];
    for round in 0..30 {
        let mut p = PDocument::new(l("a"));
        // Random small tree.
        let mut ordinary = vec![p.root()];
        for _ in 0..rng.gen_range(3..8) {
            let parent = ordinary[rng.gen_range(0..ordinary.len())];
            let lab = l(labels[rng.gen_range(0..3usize)]);
            let child = match rng.gen_range(0..4) {
                0 => {
                    let m = p.add_dist(parent, PKind::Mux, 1.0);
                    p.add_ordinary(m, lab, rng.gen_range(0.1..0.9))
                }
                1 => {
                    let m = p.add_dist(parent, PKind::Ind, 1.0);
                    p.add_ordinary(m, lab, rng.gen_range(0.1..0.9))
                }
                2 => {
                    let m = p.add_dist(parent, PKind::Det, 1.0);
                    p.add_ordinary(m, lab, 1.0)
                }
                _ => p.add_ordinary(parent, lab, 1.0),
            };
            ordinary.push(child);
        }
        assert!(p.validate().is_ok(), "round {round}");
        let Some(space) = p.px_space_limited(1 << 14) else {
            continue;
        };
        for pat in [
            "a//b", "a//c", "a/b[c]", "a//b[c]", "a[b]//c", "a/a", "a//a//a",
        ] {
            let query = q(pat);
            let dp_answers = pxv_peval::eval_tp(&p, &query);
            let exact = pxv_peval::exact::eval_tp_over_space(&space, &query);
            assert_eq!(dp_answers.len(), exact.len(), "round {round} {pat}");
            for ((n1, p1), (n2, p2)) in dp_answers.iter().zip(&exact) {
                assert_eq!(n1, n2, "round {round} {pat}");
                assert!((p1 - p2).abs() < 1e-9, "round {round} {pat}: {p1} vs {p2}");
            }
        }
    }
}

#[test]
fn conjunction_with_shared_subpattern() {
    // q1's and q2's witnesses overlap on the same node: the DP must treat
    // them jointly, not multiply.
    let p = pxv_pxml::text::parse_pdocument("a[mux(0.5: b[c, d])]").unwrap();
    let joint = pxv_peval::dp::boolean_conjunction_probability(&p, &[q("a/b[c]"), q("a/b[d]")]);
    assert!((joint - 0.5).abs() < 1e-12);
    let triple =
        pxv_peval::dp::boolean_conjunction_probability(&p, &[q("a/b[c]"), q("a/b[d]"), q("a//c")]);
    assert!((triple - 0.5).abs() < 1e-12);
}

#[test]
fn joint_probability_mixed_targets_vs_enumeration() {
    let p = pxv_pxml::text::parse_pdocument(
        "a#0[b#1[ind#2(0.6: c#3, 0.7: c#4[d#5])], mux#6(0.4: b#7[c#8])]",
    )
    .unwrap();
    let space = p.px_space();
    let view = q("a/b");
    let qq = q("a/b/c");
    // view selects n1 AND q selects n4.
    let got = pxv_peval::joint_probability(&p, &[(&view, NodeId(1)), (&qq, NodeId(4))]);
    let want = space.probability_where(|w| {
        pxv_tpq::embed::selects(&view, w, NodeId(1)) && pxv_tpq::embed::selects(&qq, w, NodeId(4))
    });
    assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    // Same target twice reuses the pin.
    let got2 = pxv_peval::joint_probability(&p, &[(&view, NodeId(1)), (&view, NodeId(1))]);
    let want2 = space.probability_where(|w| pxv_tpq::embed::selects(&view, w, NodeId(1)));
    assert!((got2 - want2).abs() < 1e-9);
}

#[test]
fn max_world_monotonicity_bound() {
    // Every positive-probability answer appears in the maximal world.
    let p = pxv_pxml::text::parse_pdocument(
        "a#0[mux#1(0.5: b#2[c#3]), ind#4(0.3: b#5[mux#6(0.9: c#7)])]",
    )
    .unwrap();
    let query = q("a/b[c]");
    let answers = pxv_peval::eval_tp(&p, &query);
    let max = pxv_peval::dp::max_world(&p);
    let max_answers = pxv_tpq::embed::eval(&query, &max);
    for (n, _) in answers {
        assert!(max_answers.contains(&n));
    }
}
