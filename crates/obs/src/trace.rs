//! Request-scoped causal trace contexts and trace-tree assembly.
//!
//! A [`TraceContext`] names one request: a process-unique trace id plus
//! the span id of the innermost open span (the *parent* for the next
//! span entered on this thread). Contexts are propagated as a
//! thread-local **ambient** value: the unit of work that owns a request
//! — the server's worker picking a job off the queue, or an
//! `answer_batch` worker picking a query off the cursor — installs the
//! context with [`TraceContext::install`], and every
//! [`crate::span::Span`] entered underneath automatically links itself
//! into the tree by stamping `(trace_id, span_id, parent_id)` onto its
//! [`crate::span::SpanRecord`]. Crossing a thread boundary is always
//! explicit: capture [`TraceContext::current`] before spawning and
//! install the clone inside the worker — nothing flows implicitly.
//!
//! A context may carry a [`FlightRecorder`]: a bounded per-trace buffer
//! that receives a copy of every span record in the trace, so the
//! request's owner can render the full tree the moment the request
//! finishes (the slow-query log does exactly this) without draining —
//! and racing — the process-wide rings.

use crate::ring::Ring;
use crate::span::SpanRecord;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Capacity of one [`FlightRecorder`]: spans per trace beyond this are
/// dropped oldest-first (and counted by the underlying ring).
pub const FLIGHT_CAPACITY: usize = 256;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Number of installed contexts process-wide — the cheap "could any
/// thread be traced right now" gate [`crate::span::Span::enter`] reads
/// before touching thread-local state.
static ACTIVE_CONTEXTS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static AMBIENT: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
}

/// A bounded per-trace span buffer (see module docs). Cloning shares
/// the buffer, so the same recorder can follow a context across the
/// batch workers that re-install it.
#[derive(Clone, Debug)]
pub struct FlightRecorder(Arc<Mutex<Ring<SpanRecord>>>);

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An empty recorder holding at most [`FLIGHT_CAPACITY`] spans.
    pub fn new() -> FlightRecorder {
        FlightRecorder(Arc::new(Mutex::new(Ring::new(FLIGHT_CAPACITY))))
    }

    pub(crate) fn push(&self, record: SpanRecord) {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
    }

    /// Snapshot of the buffered spans, sorted by start time.
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect();
        out.sort_by_key(|r| r.start_nanos);
        out
    }

    /// Spans dropped because the trace outgrew [`FLIGHT_CAPACITY`].
    pub fn dropped(&self) -> u64 {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped()
    }
}

/// The identity of one request's trace (see module docs).
#[derive(Clone, Debug)]
pub struct TraceContext {
    trace_id: u64,
    parent: u64,
    flight: Option<FlightRecorder>,
}

impl Default for TraceContext {
    fn default() -> TraceContext {
        TraceContext::new()
    }
}

impl TraceContext {
    /// A fresh context with a process-unique trace id and no parent
    /// span (the first span entered under it becomes a root).
    pub fn new() -> TraceContext {
        TraceContext {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            parent: 0,
            flight: None,
        }
    }

    /// A fresh context carrying a [`FlightRecorder`], so the trace can
    /// be rendered per-request without draining the global rings.
    pub fn with_flight() -> TraceContext {
        TraceContext {
            flight: Some(FlightRecorder::new()),
            ..TraceContext::new()
        }
    }

    /// The process-unique trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The flight recorder attached at construction, if any.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// A clone of the context currently installed on this thread — what
    /// a dispatcher captures before handing work to another thread.
    pub fn current() -> Option<TraceContext> {
        AMBIENT.with(|cell| cell.borrow().clone())
    }

    /// Installs this context as the thread's ambient trace until the
    /// returned guard drops (the previous ambient value, if any, is
    /// restored — installs nest).
    pub fn install(self) -> ContextGuard {
        ACTIVE_CONTEXTS.fetch_add(1, Ordering::Relaxed);
        let previous = AMBIENT.with(|cell| cell.borrow_mut().replace(self));
        ContextGuard { previous }
    }
}

/// RAII guard for an installed [`TraceContext`]; dropping it restores
/// whatever was ambient before.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct ContextGuard {
    previous: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        AMBIENT.with(|cell| *cell.borrow_mut() = self.previous.take());
        ACTIVE_CONTEXTS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Whether any thread currently has a context installed (relaxed load —
/// a gate, not a synchronization point).
pub(crate) fn any_context_active() -> bool {
    ACTIVE_CONTEXTS.load(Ordering::Relaxed) > 0
}

/// Whether *this* thread has an ambient context.
pub(crate) fn has_ambient() -> bool {
    AMBIENT.with(|cell| cell.borrow().is_some())
}

/// The causal identity handed to one opening span.
#[derive(Clone, Debug)]
pub(crate) struct OpenSpan {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub flight: Option<FlightRecorder>,
    /// Whether the ambient parent was re-pointed at this span (and must
    /// be restored on close).
    linked: bool,
}

/// Allocates ids for a span opening on this thread: reads the ambient
/// context (if any), assigns a fresh span id, and re-points the ambient
/// parent at the new span so spans entered underneath become children.
pub(crate) fn open_span() -> OpenSpan {
    let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    AMBIENT.with(|cell| match cell.borrow_mut().as_mut() {
        Some(ctx) => {
            let parent_id = ctx.parent;
            ctx.parent = span_id;
            OpenSpan {
                trace_id: ctx.trace_id,
                span_id,
                parent_id,
                flight: ctx.flight.clone(),
                linked: true,
            }
        }
        None => OpenSpan {
            trace_id: 0,
            span_id,
            parent_id: 0,
            flight: None,
            linked: false,
        },
    })
}

/// Restores the ambient parent a matching [`open_span`] displaced.
/// Tolerant of the context having been swapped underneath (a nested
/// install) — it only rolls back a parent it actually set.
pub(crate) fn close_span(open: &OpenSpan) {
    if !open.linked {
        return;
    }
    AMBIENT.with(|cell| {
        if let Some(ctx) = cell.borrow_mut().as_mut() {
            if ctx.trace_id == open.trace_id && ctx.parent == open.span_id {
                ctx.parent = open.parent_id;
            }
        }
    });
}

/// One node of an assembled trace tree.
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// The span at this node.
    pub record: SpanRecord,
    /// Child spans, sorted by start time.
    pub children: Vec<TraceNode>,
}

/// One request's reassembled span tree.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The trace id shared by every span in the tree (0 collects spans
    /// recorded with no ambient context — a flat legacy timeline).
    pub trace_id: u64,
    /// Root spans (parent absent from the record set), by start time.
    pub roots: Vec<TraceNode>,
}

impl TraceTree {
    /// Total spans in the tree.
    pub fn len(&self) -> usize {
        fn count(nodes: &[TraceNode]) -> usize {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        count(&self.roots)
    }

    /// Whether the tree holds no spans.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

/// Reassembles drained span records into per-trace trees: records are
/// grouped by `trace_id`, children attach under their `parent_id`, and
/// a span whose parent is absent from `records` (dropped from a ring,
/// or never closed) becomes a root. Trees come back ordered by trace
/// id; siblings by start time.
pub fn build_trees(records: &[SpanRecord]) -> Vec<TraceTree> {
    use std::collections::HashMap;
    let mut by_trace: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        by_trace.entry(r.trace_id).or_default().push(r);
    }
    let mut trace_ids: Vec<u64> = by_trace.keys().copied().collect();
    trace_ids.sort_unstable();
    let mut out = Vec::with_capacity(trace_ids.len());
    for trace_id in trace_ids {
        let spans = &by_trace[&trace_id];
        let present: HashMap<u64, usize> = spans
            .iter()
            .enumerate()
            .map(|(i, r)| (r.span_id, i))
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, r) in spans.iter().enumerate() {
            match present.get(&r.parent_id) {
                // A self-parented span (id 0 in trace 0) is a root too.
                Some(&p) if p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        fn assemble(i: usize, spans: &[&SpanRecord], children: &[Vec<usize>]) -> TraceNode {
            let mut kids: Vec<TraceNode> = children[i]
                .iter()
                .map(|&c| assemble(c, spans, children))
                .collect();
            kids.sort_by_key(|n| n.record.start_nanos);
            TraceNode {
                record: spans[i].clone(),
                children: kids,
            }
        }
        let mut root_nodes: Vec<TraceNode> = roots
            .iter()
            .map(|&i| assemble(i, spans, &children))
            .collect();
        root_nodes.sort_by_key(|n| n.record.start_nanos);
        out.push(TraceTree {
            trace_id,
            roots: root_nodes,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Span};
    use std::sync::MutexGuard;

    // The recorder switch is process-global; see span.rs tests.
    fn serial() -> MutexGuard<'static, ()> {
        crate::span::test_serial()
    }

    #[test]
    fn install_nests_and_restores() {
        let _guard = serial();
        assert!(TraceContext::current().is_none());
        let outer = TraceContext::new();
        let outer_id = outer.trace_id();
        let g1 = outer.install();
        assert_eq!(TraceContext::current().unwrap().trace_id(), outer_id);
        {
            let inner = TraceContext::with_flight();
            let inner_id = inner.trace_id();
            assert_ne!(inner_id, outer_id, "trace ids are process-unique");
            let _g2 = inner.install();
            assert_eq!(TraceContext::current().unwrap().trace_id(), inner_id);
        }
        assert_eq!(
            TraceContext::current().unwrap().trace_id(),
            outer_id,
            "inner guard restored the outer context"
        );
        drop(g1);
        assert!(TraceContext::current().is_none());
    }

    #[test]
    fn spans_under_a_context_form_a_tree() {
        let _guard = serial();
        Recorder::enable();
        let _ = Recorder::drain();
        let ctx = TraceContext::with_flight();
        let trace_id = ctx.trace_id();
        let flight = ctx.flight().cloned().unwrap();
        {
            let _g = ctx.install();
            let _root = Span::enter("request");
            {
                let _plan = Span::enter("plan");
            }
            {
                let _eval = Span::enter("eval");
                let _inner = Span::enter("eval_tp");
            }
        }
        Recorder::disable();
        let records = flight.records();
        assert_eq!(records.len(), 4, "flight mirror holds the whole trace");
        assert!(records.iter().all(|r| r.trace_id == trace_id));
        let trees = build_trees(&records);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].trace_id, trace_id);
        assert_eq!(trees[0].len(), 4);
        let root = &trees[0].roots[0];
        assert_eq!(root.record.name, "request");
        assert_eq!(root.record.parent_id, 0);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.name, "plan");
        assert_eq!(root.children[0].record.parent_id, root.record.span_id);
        let eval = &root.children[1];
        assert_eq!(eval.record.name, "eval");
        assert_eq!(eval.children.len(), 1);
        assert_eq!(eval.children[0].record.name, "eval_tp");
        assert_eq!(eval.children[0].record.parent_id, eval.record.span_id);
        // The global rings saw the same spans.
        let drained = Recorder::drain();
        assert!(drained.iter().filter(|r| r.trace_id == trace_id).count() == 4);
    }

    #[test]
    fn context_records_without_global_recorder() {
        let _guard = serial();
        Recorder::disable();
        let _ = Recorder::drain();
        {
            // No context, recorder off: fully inert.
            let s = Span::enter("inert");
            assert!(!s.is_active());
        }
        let ctx = TraceContext::with_flight();
        let flight = ctx.flight().cloned().unwrap();
        {
            let _g = ctx.install();
            let s = Span::enter("request");
            assert!(
                s.is_active(),
                "an installed context records even with the recorder off"
            );
        }
        assert_eq!(flight.records().len(), 1);
        // The span also landed in the thread ring; clean up.
        let _ = Recorder::drain();
    }

    #[test]
    fn cross_thread_install_joins_the_same_trace() {
        let _guard = serial();
        Recorder::disable();
        let _ = Recorder::drain();
        let ctx = TraceContext::with_flight();
        let trace_id = ctx.trace_id();
        let flight = ctx.flight().cloned().unwrap();
        let _g = ctx.install();
        let root_span_id = {
            let _root = Span::enter("request");
            let handoff = TraceContext::current().expect("ambient present");
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let handoff = handoff.clone();
                    scope.spawn(move || {
                        let _g = handoff.install();
                        let _s = Span::enter("worker");
                    });
                }
            });
            open_span().parent_id // peek at the live parent: the root span
        };
        let records = flight.records();
        let workers: Vec<_> = records.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.trace_id, trace_id);
            assert_eq!(
                w.parent_id, root_span_id,
                "worker spans hang off the span open at capture time"
            );
        }
        let _ = Recorder::drain();
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let records = vec![
            SpanRecord {
                name: "lost-parent",
                start_nanos: 5,
                nanos: 1,
                fields: Vec::new(),
                trace_id: 9,
                span_id: 100,
                parent_id: 42, // 42 was dropped from the ring
            },
            SpanRecord {
                name: "untraced",
                start_nanos: 1,
                nanos: 1,
                fields: Vec::new(),
                trace_id: 0,
                span_id: 0,
                parent_id: 0,
            },
        ];
        let trees = build_trees(&records);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace_id, 0);
        assert_eq!(trees[0].roots[0].record.name, "untraced");
        assert_eq!(trees[1].trace_id, 9);
        assert_eq!(trees[1].roots[0].record.name, "lost-parent");
    }
}
