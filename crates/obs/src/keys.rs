//! Canonical wire-key names for `STATS` and `PROFILE` responses.
//!
//! The `STATS` line is assembled by the server, parsed by the client,
//! and asserted on by the e2e tests — three sites that historically each
//! spelled the key names by hand and drifted. These constants are the
//! single spelling; [`STATS_KEYS`] fixes the emission order so a test
//! can iterate the canonical list and demand every key appears.

/// Documents loaded.
pub const STATS_DOCS: &str = "docs";
/// Views registered.
pub const STATS_VIEWS: &str = "views";
/// Server-observed catalog epoch.
pub const STATS_EPOCH: &str = "epoch";
/// Engine-side catalog epoch.
pub const STATS_ENGINE_EPOCH: &str = "engine_epoch";
/// Queries answered.
pub const STATS_QUERIES: &str = "queries";
/// Answers served by the TP (single-path) evaluator.
pub const STATS_TP: &str = "tp";
/// Answers served by the TPI (interleaving) evaluator.
pub const STATS_TPI: &str = "tpi";
/// Answers served by direct evaluation fallback.
pub const STATS_DIRECT: &str = "direct";
/// View extensions materialized.
pub const STATS_MATS: &str = "mats";
/// Extension-cache hits.
pub const STATS_EXTHITS: &str = "exthits";
/// Cache invalidations.
pub const STATS_INVAL: &str = "inval";
/// Plan-cache hits.
pub const STATS_PLANHITS: &str = "planhits";
/// Plan-cache misses.
pub const STATS_PLANMISS: &str = "planmiss";
/// Document edits applied.
pub const STATS_EDITS: &str = "edits";
/// Delta (incremental) maintenance events.
pub const STATS_DELTAS: &str = "deltas";
/// Queries that fell back to direct evaluation.
pub const STATS_FALLBACKS: &str = "fallbacks";
/// Extension-cache resident bytes.
pub const STATS_CACHE_BYTES: &str = "cache_bytes";
/// Cache evictions performed.
pub const STATS_EVICTIONS: &str = "evictions";
/// Cache admissions rejected.
pub const STATS_ADMISSION_REJECTS: &str = "admission_rejects";
/// Lazy snapshot sections decoded on first probe.
pub const STATS_SECTIONS_FAULTED: &str = "sections_faulted";
/// Nanoseconds spent decoding lazily faulted sections.
pub const STATS_LAZY_DECODE_NS: &str = "lazy_decode_ns";
/// Connections accepted.
pub const STATS_CONNS: &str = "conns";
/// Connections rejected at the accept gate.
pub const STATS_REJECTED: &str = "rejected";
/// Connections currently active.
pub const STATS_ACTIVE: &str = "active";
/// Requests handled.
pub const STATS_REQUESTS: &str = "requests";
/// Requests that returned an error.
pub const STATS_ERRORS: &str = "errors";
/// Requests that arrived pipelined behind another.
pub const STATS_PIPELINED: &str = "pipelined";
/// Span records dropped from overflowing trace rings.
pub const STATS_SPANS_DROPPED: &str = "spans_dropped";
/// Request latency p50 (µs, bucket upper bound).
pub const STATS_P50US: &str = "p50us";
/// Request latency p99 (µs, bucket upper bound).
pub const STATS_P99US: &str = "p99us";

/// Every `STATS` key, in the exact order the server emits them.
pub const STATS_KEYS: [&str; 30] = [
    STATS_DOCS,
    STATS_VIEWS,
    STATS_EPOCH,
    STATS_ENGINE_EPOCH,
    STATS_QUERIES,
    STATS_TP,
    STATS_TPI,
    STATS_DIRECT,
    STATS_MATS,
    STATS_EXTHITS,
    STATS_INVAL,
    STATS_PLANHITS,
    STATS_PLANMISS,
    STATS_EDITS,
    STATS_DELTAS,
    STATS_FALLBACKS,
    STATS_CACHE_BYTES,
    STATS_EVICTIONS,
    STATS_ADMISSION_REJECTS,
    STATS_SECTIONS_FAULTED,
    STATS_LAZY_DECODE_NS,
    STATS_CONNS,
    STATS_REJECTED,
    STATS_ACTIVE,
    STATS_REQUESTS,
    STATS_ERRORS,
    STATS_PIPELINED,
    STATS_SPANS_DROPPED,
    STATS_P50US,
    STATS_P99US,
];

/// Time spent parsing the wire request (µs).
pub const PROFILE_PARSE_US: &str = "parse_us";
/// Time spent planning (µs).
pub const PROFILE_PLAN_US: &str = "plan_us";
/// Time spent probing the extension cache (µs).
pub const PROFILE_PROBE_US: &str = "probe_us";
/// Time spent materializing missing extensions (µs).
pub const PROFILE_MAT_US: &str = "mat_us";
/// Time spent evaluating (µs).
pub const PROFILE_EVAL_US: &str = "eval_us";
/// Time spent serializing the answer (µs).
pub const PROFILE_SER_US: &str = "ser_us";
/// End-to-end wall time (µs).
pub const PROFILE_TOTAL_US: &str = "total_us";
/// Extension-cache resident bytes when the query finished.
pub const PROFILE_CACHE_BYTES: &str = "cache_bytes";
/// Catalog epoch the query observed.
pub const PROFILE_EPOCH: &str = "epoch";

/// Every `PROFILE` key, in the exact order the server emits them.
pub const PROFILE_KEYS: [&str; 9] = [
    PROFILE_PARSE_US,
    PROFILE_PLAN_US,
    PROFILE_PROBE_US,
    PROFILE_MAT_US,
    PROFILE_EVAL_US,
    PROFILE_SER_US,
    PROFILE_TOTAL_US,
    PROFILE_CACHE_BYTES,
    PROFILE_EPOCH,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn key_lists_have_no_duplicates() {
        assert_eq!(
            STATS_KEYS.iter().collect::<HashSet<_>>().len(),
            STATS_KEYS.len()
        );
        assert_eq!(
            PROFILE_KEYS.iter().collect::<HashSet<_>>().len(),
            PROFILE_KEYS.len()
        );
    }

    #[test]
    fn keys_are_wire_safe() {
        for k in STATS_KEYS.iter().chain(PROFILE_KEYS.iter()) {
            assert!(
                k.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "key `{k}` must be lowercase identifier-safe"
            );
        }
    }
}
