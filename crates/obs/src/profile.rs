//! The per-query flight record: where one answer's wall time went.
//!
//! When `QueryOptions::profile(true)` is set, the engine fills a
//! [`QueryProfile`] while answering and attaches it to the `Answer`. The
//! stage set mirrors the answer pipeline: parse (server-side), plan,
//! cache-probe, materialize, eval, serialize (server-side). The engine
//! only fills the stages it executes; the server adds parse/serialize
//! around it. When profiling is *disabled* none of these fields are
//! touched and no clocks are read, so answers stay bit-identical to an
//! uninstrumented run.

/// Stage breakdown and context for a single profiled query. All times
/// are nanoseconds of wall clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Parsing the wire request into a query (server-side).
    pub parse_nanos: u64,
    /// Planning: rewriting-based plan lookup or construction.
    pub plan_nanos: u64,
    /// Probing the extension cache for already-materialized views.
    pub probe_nanos: u64,
    /// Materializing view extensions missing from the cache.
    pub materialize_nanos: u64,
    /// Evaluating the plan (or the direct fallback) over extensions.
    pub eval_nanos: u64,
    /// Rendering the answer to wire form (server-side).
    pub serialize_nanos: u64,
    /// End-to-end wall time as observed by whoever assembled the profile.
    pub total_nanos: u64,
    /// Extension-cache bytes resident when the query finished.
    pub cache_bytes: u64,
    /// Catalog epoch the query observed.
    pub epoch: u64,
}

impl QueryProfile {
    /// Sum of the individual stage times (excludes `total_nanos`, which
    /// is measured independently — the gap between the two is untracked
    /// overhead).
    pub fn stage_nanos_sum(&self) -> u64 {
        self.parse_nanos
            + self.plan_nanos
            + self.probe_nanos
            + self.materialize_nanos
            + self.eval_nanos
            + self.serialize_nanos
    }

    /// The profile as wire `key=value` pairs, in [`crate::keys::PROFILE_KEYS`]
    /// order, with times reported in microseconds.
    pub fn wire_pairs(&self) -> [(&'static str, u64); 9] {
        [
            (crate::keys::PROFILE_PARSE_US, self.parse_nanos / 1_000),
            (crate::keys::PROFILE_PLAN_US, self.plan_nanos / 1_000),
            (crate::keys::PROFILE_PROBE_US, self.probe_nanos / 1_000),
            (crate::keys::PROFILE_MAT_US, self.materialize_nanos / 1_000),
            (crate::keys::PROFILE_EVAL_US, self.eval_nanos / 1_000),
            (crate::keys::PROFILE_SER_US, self.serialize_nanos / 1_000),
            (crate::keys::PROFILE_TOTAL_US, self.total_nanos / 1_000),
            (crate::keys::PROFILE_CACHE_BYTES, self.cache_bytes),
            (crate::keys::PROFILE_EPOCH, self.epoch),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sum_excludes_total() {
        let p = QueryProfile {
            parse_nanos: 1,
            plan_nanos: 2,
            probe_nanos: 3,
            materialize_nanos: 4,
            eval_nanos: 5,
            serialize_nanos: 6,
            total_nanos: 1_000,
            cache_bytes: 7,
            epoch: 8,
        };
        assert_eq!(p.stage_nanos_sum(), 21);
    }

    #[test]
    fn wire_pairs_follow_canonical_key_order() {
        let p = QueryProfile {
            parse_nanos: 1_500,
            total_nanos: 9_999,
            ..QueryProfile::default()
        };
        let pairs = p.wire_pairs();
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, crate::keys::PROFILE_KEYS);
        assert_eq!(pairs[0], ("parse_us", 1), "ns truncate to µs");
        assert_eq!(pairs[6], ("total_us", 9));
    }
}
