//! Counters, gauges, fixed-bucket histograms, a naming [`Registry`], and
//! Prometheus text [`Exposition`].
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones over atomics: recording is one relaxed atomic op, safe from any
//! thread, and never allocates. A [`Registry`] binds handles to metric
//! names (scheme: `pxv_<layer>_<name>`, see DESIGN.md §12) and renders
//! them in the Prometheus text format; [`Exposition`] is the renderer
//! itself, usable standalone for metrics that are *sampled* at scrape
//! time (the server samples the engine's lifetime counters this way
//! instead of double-counting them into live handles).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of histogram buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, so 32 buckets cover 1 µs to over an hour when
/// samples are microseconds.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotone counter. [`Counter::store`] exists for *sampled* sources
/// (mirroring an external atomic at scrape time); live instrumentation
/// should only ever [`Counter::inc`]/[`Counter::add`].
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh zeroed counter (not yet in any registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for counters sampled from another source).
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge (queue depth, cache bytes, epoch…).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh zeroed gauge (not yet in any registry).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A lock-free power-of-two histogram (the generalization of the server's
/// original one-off latency histogram). Recording is one atomic bucket
/// increment plus one sum update; quantiles walk the 32 buckets and
/// report the **upper bound** of the bucket containing the requested rank
/// — exact enough for p50/p99 dashboards, never more than 2× off.
///
/// Samples are dimensionless `u64`s; the convention throughout the
/// workspace is microseconds for latencies. A sample of 0 lands in the
/// first bucket; samples at or beyond `2^31` saturate into the last.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh empty histogram (not yet in any registry).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let idx = (63 - value.max(1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Upper bound of the bucket holding the `q`-quantile
    /// (`0.0 < q <= 1.0`); 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << HISTOGRAM_BUCKETS
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the per-bucket counts (non-cumulative).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// Escapes a Prometheus label *value* for embedding between double
/// quotes: backslash, double quote, and newline are the three
/// characters the text exposition format requires escaping
/// (`\\`, `\"`, `\n`). Everything else passes through untouched.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Whether `name` is a well-formed metric name under the workspace
/// scheme: `pxv_` followed by lowercase ASCII, digits and underscores.
pub fn valid_metric_name(name: &str) -> bool {
    name.strip_prefix("pxv_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    })
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Clone, Debug)]
struct Entry {
    name: &'static str,
    help: &'static str,
    metric: Metric,
}

/// A named set of live metrics, rendered together. Registration is
/// idempotent: asking for an existing name (of the same kind) returns a
/// clone of the existing handle, so independent subsystems can share a
/// metric by name. Registering an existing name as a *different* kind
/// panics — that is a wiring bug, not a runtime condition.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &'static str, help: &'static str, metric: Metric) -> Metric {
        assert!(valid_metric_name(name), "bad metric name `{name}`");
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = entries.iter().find(|e| e.name == name) {
            match (&existing.metric, &metric) {
                (Metric::Counter(_), Metric::Counter(_))
                | (Metric::Gauge(_), Metric::Gauge(_))
                | (Metric::Histogram(_), Metric::Histogram(_)) => return existing.metric.clone(),
                _ => panic!("metric `{name}` re-registered as a different kind"),
            }
        }
        entries.push(Entry {
            name,
            help,
            metric: metric.clone(),
        });
        metric
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        match self.register(name, help, Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => unreachable!("register returns the requested kind"),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        match self.register(name, help, Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => unreachable!("register returns the requested kind"),
        }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.attach_histogram(name, help, Histogram::new())
    }

    /// Registers an *existing* histogram handle under `name` (or returns
    /// the already-registered one) — how the server exposes a histogram
    /// that another struct owns.
    pub fn attach_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        histogram: Histogram,
    ) -> Histogram {
        match self.register(name, help, Metric::Histogram(histogram)) {
            Metric::Histogram(h) => h,
            _ => unreachable!("register returns the requested kind"),
        }
    }

    /// Renders every registered metric into `exposition`, in
    /// registration order.
    pub fn render_into(&self, exposition: &mut Exposition) {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        for e in entries.iter() {
            match &e.metric {
                Metric::Counter(c) => exposition.counter(e.name, e.help, c.get()),
                Metric::Gauge(g) => exposition.gauge(e.name, e.help, g.get()),
                Metric::Histogram(h) => exposition.histogram(e.name, e.help, h),
            }
        }
    }

    /// The registry as Prometheus text.
    pub fn render(&self) -> String {
        let mut x = Exposition::new();
        self.render_into(&mut x);
        x.finish()
    }
}

/// A Prometheus text-format builder (`# HELP` / `# TYPE` comment lines
/// followed by sample lines). The one place the exposition grammar is
/// implemented — the [`Registry`] renders through it, and scrape-time
/// sampled metrics append to the same builder.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_metric_name(name), "bad metric name `{name}`");
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(&help.replace('\n', " "));
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, suffix: &str, value: u64) {
        self.out.push_str(name);
        self.out.push_str(suffix);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Appends one counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, "", value);
    }

    /// Appends one counter sample carrying labels; label values are
    /// escaped with [`escape_label_value`], so arbitrary strings (view
    /// names, file paths) are safe to expose.
    pub fn counter_labeled(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, help, "counter");
        self.labeled_sample(name, labels, value);
    }

    fn labeled_sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.out.push('{');
        for (i, (key, label_value)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(key);
            self.out.push_str("=\"");
            self.out.push_str(&escape_label_value(label_value));
            self.out.push('"');
        }
        self.out.push_str("} ");
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Appends one gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.sample(name, "", value);
    }

    /// Appends one histogram: cumulative `_bucket{le=…}` lines (one per
    /// power-of-two upper bound plus `+Inf`), then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, histogram: &Histogram) {
        self.header(name, help, "histogram");
        let counts = histogram.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            let le = 1u64 << (i + 1).min(63);
            self.out.push_str(name);
            self.out.push_str("_bucket{le=\"");
            self.out.push_str(&le.to_string());
            self.out.push_str("\"} ");
            self.out.push_str(&cumulative.to_string());
            self.out.push('\n');
        }
        self.out.push_str(name);
        self.out.push_str("_bucket{le=\"+Inf\"} ");
        self.out.push_str(&cumulative.to_string());
        self.out.push('\n');
        self.sample(name, "_sum", histogram.sum());
        self.sample(name, "_count", cumulative);
    }

    /// The rendered text (ends with a newline unless empty).
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        assert_eq!(h.count(), 0);
        for _ in 0..99 {
            h.record_duration(Duration::from_micros(3)); // bucket [2,4)
        }
        h.record_duration(Duration::from_millis(40)); // bucket [32768, 65536)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.99), 4);
        assert_eq!(h.quantile(1.0), 65536);
        // Sub-microsecond latencies land in the first bucket.
        h.record_duration(Duration::from_nanos(10));
        assert_eq!(h.count(), 101);
        assert_eq!(h.sum(), 99 * 3 + 40_000);
    }

    #[test]
    fn histogram_zero_sample_quantiles_are_zero() {
        let h = Histogram::new();
        for q in [0.001, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn histogram_saturates_extreme_samples_into_last_bucket() {
        let h = Histogram::new();
        h.record(0); // clamped to 1 → first bucket
        h.record(u64::MAX); // saturates into the last bucket
        h.record(1u64 << 40);
        assert_eq!(h.count(), 3);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 2);
        // The last bucket's reported upper bound is 2^32 — a saturated
        // quantile is clearly marked as "off the scale", not garbage.
        assert_eq!(h.quantile(1.0), 1u64 << HISTOGRAM_BUCKETS);
    }

    #[test]
    fn metric_names_validate() {
        assert!(valid_metric_name("pxv_server_requests_total"));
        assert!(valid_metric_name("pxv_cache_bytes"));
        assert!(!valid_metric_name("pxv_"));
        assert!(!valid_metric_name("requests_total"));
        assert!(!valid_metric_name("pxv_Server_requests"));
        assert!(!valid_metric_name("pxv_bad-name"));
    }

    #[test]
    fn registry_is_idempotent_and_renders() {
        let r = Registry::new();
        let c1 = r.counter("pxv_test_hits_total", "Hits.");
        let c2 = r.counter("pxv_test_hits_total", "Hits.");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same underlying counter");
        let g = r.gauge("pxv_test_depth", "Depth.");
        g.set(7);
        let h = r.histogram("pxv_test_us", "Latency (µs).");
        h.record(5);
        let text = r.render();
        assert!(text.contains("# TYPE pxv_test_hits_total counter"));
        assert!(text.contains("pxv_test_hits_total 3"));
        assert!(text.contains("# TYPE pxv_test_depth gauge"));
        assert!(text.contains("pxv_test_depth 7"));
        assert!(text.contains("# TYPE pxv_test_us histogram"));
        assert!(text.contains("pxv_test_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("pxv_test_us_sum 5"));
        assert!(text.contains("pxv_test_us_count 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("pxv_test_x", "X.");
        let _ = r.gauge("pxv_test_x", "X.");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(
            escape_label_value("a\\b \"quoted\"\nnext"),
            "a\\\\b \\\"quoted\\\"\\nnext"
        );
        let mut x = Exposition::new();
        x.counter_labeled(
            "pxv_test_views_total",
            "Per-view hits.",
            &[("view", "v1\"BON\"\\path\nx"), ("doc", "hr")],
            4,
        );
        let text = x.finish();
        let sample = text.lines().last().unwrap();
        assert_eq!(
            sample,
            "pxv_test_views_total{view=\"v1\\\"BON\\\"\\\\path\\nx\",doc=\"hr\"} 4"
        );
        assert!(!sample.contains('\r'));
        // The escaped sample is still one line: no raw newline leaked.
        assert_eq!(text.lines().count(), 3, "# HELP, # TYPE, sample");
    }

    /// Golden test: the exposition output for a fixed registry is
    /// byte-stable. External scrapers and the CI smoke greps depend on
    /// this exact shape — a formatting change must show up here.
    #[test]
    fn exposition_output_is_stable() {
        let r = Registry::new();
        r.counter("pxv_test_requests_total", "Requests handled.")
            .add(7);
        r.gauge("pxv_test_depth", "Queue depth.").set(2);
        let h = r.histogram("pxv_test_lat_us", "Latency (µs).");
        h.record(3); // bucket [2,4)
        h.record(5); // bucket [4,8)
        let text = r.render();
        let mut expected = String::from(
            "# HELP pxv_test_requests_total Requests handled.\n\
             # TYPE pxv_test_requests_total counter\n\
             pxv_test_requests_total 7\n\
             # HELP pxv_test_depth Queue depth.\n\
             # TYPE pxv_test_depth gauge\n\
             pxv_test_depth 2\n\
             # HELP pxv_test_lat_us Latency (µs).\n\
             # TYPE pxv_test_lat_us histogram\n",
        );
        let mut cumulative = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            cumulative += match i {
                1 => 1, // the 3
                2 => 1, // the 5
                _ => 0,
            };
            expected.push_str(&format!(
                "pxv_test_lat_us_bucket{{le=\"{}\"}} {}\n",
                1u64 << (i + 1),
                cumulative
            ));
        }
        expected.push_str("pxv_test_lat_us_bucket{le=\"+Inf\"} 2\n");
        expected.push_str("pxv_test_lat_us_sum 8\n");
        expected.push_str("pxv_test_lat_us_count 2\n");
        assert_eq!(text, expected);
    }

    /// Every non-comment exposition line must parse as `name[{labels}] value`
    /// — the shape the CI smoke job and external scrapers rely on.
    #[test]
    fn exposition_lines_parse_as_prometheus_text() {
        let r = Registry::new();
        r.counter("pxv_test_a_total", "A.").add(9);
        r.gauge("pxv_test_b", "B.").set(1);
        r.histogram("pxv_test_c_us", "C.").record(100);
        for line in r.render().lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            let bare = name.split('{').next().unwrap();
            assert!(bare.starts_with("pxv_test_"), "{line}");
            value.parse::<u64>().expect("numeric value");
        }
    }
}
