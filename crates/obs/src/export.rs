//! Exporters for drained spans: Chrome `trace_event` JSON (loadable in
//! `about:tracing` / Perfetto), a plain-text tree renderer, and a
//! std-only JSON checker used by tests and the CI trace-smoke job.
//!
//! The Chrome mapping: every [`SpanRecord`] becomes one complete event
//! (`"ph":"X"`) with `ts`/`dur` in fractional microseconds relative to
//! the recorder's process epoch, `pid` fixed at 1, and `tid` set to the
//! **trace id** — so each request renders as its own lane with the
//! request's span tree stacked inside it by start/duration nesting. The
//! causal ids and any recorded fields ride in `args`.

use crate::span::SpanRecord;
use crate::trace::{build_trees, TraceNode};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders span records as Chrome `trace_event` JSON: an object with a
/// `traceEvents` array, one complete (`"ph":"X"`) event per line so the
/// export frames cleanly over the line-oriented wire protocol. The
/// output round-trips [`check_chrome_trace`].
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"pxv\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}",
            escape_json(r.name),
            r.start_nanos / 1_000,
            r.start_nanos % 1_000,
            r.nanos / 1_000,
            r.nanos % 1_000,
            r.trace_id,
            r.trace_id,
            r.span_id,
            r.parent_id,
        );
        for (key, value) in &r.fields {
            let _ = write!(out, ",\"{}\":{}", escape_json(key), value);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}");
    out
}

/// Renders span records as an indented plain-text tree, one trace per
/// block: a `trace <id>` heading followed by its spans, children
/// indented two spaces under their parent, each line
/// `<name> <µs>us[ key=value …]`. Lines never start or end blank, so
/// the rendering frames over the wire as a counted line block.
pub fn render_text_tree(records: &[SpanRecord]) -> String {
    fn node(out: &mut String, n: &TraceNode, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(
            out,
            "{} {}.{:03}us",
            n.record.name,
            n.record.nanos / 1_000,
            n.record.nanos % 1_000
        );
        for (key, value) in &n.record.fields {
            let _ = write!(out, " {key}={value}");
        }
        out.push('\n');
        for child in &n.children {
            node(out, child, depth + 1);
        }
    }
    let mut out = String::new();
    for tree in build_trees(records) {
        let _ = writeln!(out, "trace {}", tree.trace_id);
        for root in &tree.roots {
            node(&mut out, root, 1);
        }
    }
    out
}

/// A parsed JSON value (the minimal model the checker needs).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (duplicate keys kept as-is).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not reassembled — the
                            // checker never needs astral-plane names.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses one JSON document (std-only recursive descent; no trailing
/// garbage tolerated). Shared by the trace checker, the e2e tests, and
/// the `bench-diff` baseline comparator.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Validates a Chrome `trace_event` export: parses the JSON, requires a
/// `traceEvents` array whose members are complete events (string
/// `name`, `"ph":"X"`, numeric non-negative `ts`/`dur`, numeric
/// `pid`/`tid`). Returns the event count.
pub fn check_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = parse_json(json)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents` member")?;
    let JsonValue::Array(events) = events else {
        return Err("`traceEvents` is not an array".into());
    };
    for (i, event) in events.iter().enumerate() {
        let ctx = |what: &str| format!("event {i}: {what}");
        if event.get("name").and_then(JsonValue::as_str).is_none() {
            return Err(ctx("missing string `name`"));
        }
        if event.get("ph").and_then(JsonValue::as_str) != Some("X") {
            return Err(ctx("`ph` must be \"X\""));
        }
        for key in ["ts", "dur", "pid", "tid"] {
            match event.get(key).and_then(JsonValue::as_num) {
                Some(n) if n >= 0.0 => {}
                _ => return Err(ctx(&format!("missing numeric `{key}`"))),
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &'static str, start: u64, dur: u64, ids: (u64, u64, u64)) -> SpanRecord {
        SpanRecord {
            name,
            start_nanos: start,
            nanos: dur,
            fields: Vec::new(),
            trace_id: ids.0,
            span_id: ids.1,
            parent_id: ids.2,
        }
    }

    #[test]
    fn chrome_export_round_trips_the_checker() {
        let mut req = record("request", 1_000, 9_500, (7, 1, 0));
        req.fields.push(("conn", 3));
        let records = vec![
            req,
            record("plan", 1_200, 2_000, (7, 2, 1)),
            record("eval", 3_500, 4_000, (7, 3, 1)),
        ];
        let json = chrome_trace_json(&records);
        assert_eq!(check_chrome_trace(&json).unwrap(), 3);
        let doc = parse_json(&json).unwrap();
        let JsonValue::Array(events) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents is an array");
        };
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("request"));
        assert_eq!(events[0].get("tid").unwrap().as_num(), Some(7.0));
        assert_eq!(events[0].get("ts").unwrap().as_num(), Some(1.0));
        assert_eq!(events[0].get("dur").unwrap().as_num(), Some(9.5));
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("span_id").unwrap().as_num(), Some(1.0));
        assert_eq!(args.get("conn").unwrap().as_num(), Some(3.0));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("parent_id")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn empty_export_is_valid() {
        let json = chrome_trace_json(&[]);
        assert_eq!(check_chrome_trace(&json).unwrap(), 0);
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        assert!(check_chrome_trace("not json").is_err());
        assert!(check_chrome_trace("{}").is_err());
        assert!(check_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(
            check_chrome_trace("{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\"}]}").is_err(),
            "non-complete phases are rejected"
        );
        assert!(
            check_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"dur\":1,\"pid\":1}]}"
            )
            .is_err(),
            "missing tid"
        );
    }

    #[test]
    fn text_tree_indents_children_under_parents() {
        let records = vec![
            record("request", 1_000, 9_500, (7, 1, 0)),
            record("plan", 1_200, 2_000, (7, 2, 1)),
            record("eval", 3_500, 4_000, (7, 3, 1)),
            record("eval_tp", 3_600, 3_000, (7, 4, 3)),
        ];
        let text = render_text_tree(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "trace 7");
        assert_eq!(lines[1], "  request 9.500us");
        assert_eq!(lines[2], "    plan 2.000us");
        assert_eq!(lines[3], "    eval 4.000us");
        assert_eq!(lines[4], "      eval_tp 3.000us");
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a\n\"b\"":[1, -2.5e1, true, null, "é"]}"#).unwrap();
        let arr = v.get("a\n\"b\"").unwrap();
        let JsonValue::Array(items) = arr else {
            panic!("array")
        };
        assert_eq!(items[0].as_num(), Some(1.0));
        assert_eq!(items[1].as_num(), Some(-25.0));
        assert_eq!(items[2], JsonValue::Bool(true));
        assert_eq!(items[3], JsonValue::Null);
        assert_eq!(items[4].as_str(), Some("é"));
        assert!(parse_json("{\"a\":1} tail").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn span_names_are_json_escaped() {
        let records = vec![record("weird\"name\\", 0, 1, (1, 1, 0))];
        let json = chrome_trace_json(&records);
        assert_eq!(check_chrome_trace(&json).unwrap(), 1);
        let doc = parse_json(&json).unwrap();
        let JsonValue::Array(events) = doc.get("traceEvents").unwrap() else {
            panic!()
        };
        assert_eq!(
            events[0].get("name").unwrap().as_str(),
            Some("weird\"name\\")
        );
    }
}
