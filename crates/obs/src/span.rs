//! A lightweight span/tracing facade with per-thread bounded rings.
//!
//! The design goal is that instrumentation left compiled into hot paths
//! (`pxv_peval::eval_tp`, `ProbExtension::materialize`, snapshot I/O)
//! costs one relaxed atomic load when nobody is recording. When the
//! process-wide [`Recorder`] is enabled, [`Span::enter`] captures a
//! monotonic-clock start, [`Span::record`] attaches integer fields, and
//! dropping the span pushes a [`SpanRecord`] into a bounded ring owned by
//! the current thread. Threads never contend on a shared buffer while
//! recording — each ring has its own lock touched only by its owner and
//! by [`Recorder::drain`], which merges all rings into one timeline.
//!
//! Per-connection (rather than process-wide) visibility is served by the
//! query-stage profile ([`crate::profile::QueryProfile`]), which rides on
//! the `Answer` itself; the recorder is the coarse, process-wide switch.

use crate::ring::Ring;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Capacity of each per-thread span ring; the oldest records are dropped
/// (and counted) once a thread has this many undrained spans.
pub const SPAN_RING_CAPACITY: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process start reference for span timestamps: all `start_nanos` are
/// offsets from the first call that needs a timestamp.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

type SharedRing = Arc<Mutex<Ring<SpanRecord>>>;

/// Every per-thread ring ever created, so drain can merge them even
/// after their owning threads exit.
fn all_rings() -> &'static Mutex<Vec<SharedRing>> {
    static RINGS: OnceLock<Mutex<Vec<SharedRing>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: SharedRing = {
        let ring = Arc::new(Mutex::new(Ring::new(SPAN_RING_CAPACITY)));
        all_rings()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    };
}

/// One completed span: what ran, when it started (nanoseconds since the
/// recorder's process epoch), how long it took, and any integer fields
/// attached while it was open.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Static span name, e.g. `"eval_tp"` or `"snapshot_write"`.
    pub name: &'static str,
    /// Start offset in nanoseconds from the process epoch.
    pub start_nanos: u64,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Integer fields recorded while the span was open, in call order.
    pub fields: Vec<(&'static str, u64)>,
}

/// The process-wide recording switch and drain point.
pub struct Recorder;

impl Recorder {
    /// Starts recording spans process-wide.
    pub fn enable() {
        epoch(); // pin the time reference before the first span
        ENABLED.store(true, Ordering::Release);
    }

    /// Stops recording. Spans already buffered stay until drained.
    pub fn disable() {
        ENABLED.store(false, Ordering::Release);
    }

    /// Whether spans are currently being recorded.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered spans from every thread's ring,
    /// merged and sorted by start time.
    pub fn drain() -> Vec<SpanRecord> {
        let rings = all_rings().lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for ring in rings.iter() {
            out.extend(ring.lock().unwrap_or_else(PoisonError::into_inner).drain());
        }
        out.sort_by_key(|r| r.start_nanos);
        out
    }

    /// Lifetime count of span records dropped because a thread's ring
    /// overflowed before being drained.
    pub fn dropped() -> u64 {
        let rings = all_rings().lock().unwrap_or_else(PoisonError::into_inner);
        rings
            .iter()
            .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).dropped())
            .sum()
    }
}

/// An open span. Create with [`Span::enter`]; the measurement ends (and
/// the record is buffered) when the span is dropped.
#[must_use = "a span measures until dropped; binding it to `_` ends it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, u64)>,
}

impl Span {
    /// Opens a span. When the [`Recorder`] is disabled this is inert:
    /// one relaxed atomic load, no clock read, no allocation.
    pub fn enter(name: &'static str) -> Span {
        let start = if Recorder::is_enabled() {
            Some(Instant::now())
        } else {
            None
        };
        Span {
            name,
            start,
            fields: Vec::new(),
        }
    }

    /// Attaches an integer field (e.g. `span.record("nodes", n)`).
    /// No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }

    /// Whether this span is actually measuring (recorder was enabled at
    /// [`Span::enter`] time).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let record = SpanRecord {
            name: self.name,
            start_nanos: start.duration_since(epoch()).as_nanos() as u64,
            nanos: start.elapsed().as_nanos() as u64,
            fields: std::mem::take(&mut self.fields),
        };
        LOCAL.with(|ring| {
            ring.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(record);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder switch is process-global, so tests that flip it must
    // not run concurrently with each other.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = serial();
        Recorder::disable();
        let _ = Recorder::drain();
        {
            let mut s = Span::enter("inert");
            assert!(!s.is_active());
            s.record("ignored", 1);
        }
        assert!(Recorder::drain().is_empty());
    }

    #[test]
    fn enabled_spans_capture_timing_and_fields() {
        let _guard = serial();
        Recorder::enable();
        let _ = Recorder::drain();
        {
            let mut s = Span::enter("work");
            assert!(s.is_active());
            s.record("items", 42);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        Recorder::disable();
        let spans = Recorder::drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(
            spans[0].nanos >= 1_000_000,
            "slept 2ms, got {}",
            spans[0].nanos
        );
        assert_eq!(spans[0].fields, vec![("items", 42)]);
    }

    #[test]
    fn drain_merges_threads_in_start_order() {
        let _guard = serial();
        Recorder::enable();
        let _ = Recorder::drain();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..3 {
                        let _s = Span::enter("t");
                    }
                });
            }
        });
        Recorder::disable();
        let spans = Recorder::drain();
        assert_eq!(spans.len(), 12);
        assert!(spans
            .windows(2)
            .all(|w| w[0].start_nanos <= w[1].start_nanos));
    }
}
