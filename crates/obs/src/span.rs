//! A lightweight span/tracing facade with per-thread bounded rings.
//!
//! The design goal is that instrumentation left compiled into hot paths
//! (`pxv_peval::eval_tp`, `ProbExtension::materialize`, snapshot I/O)
//! costs a couple of relaxed atomic loads when nobody is recording.
//! Recording turns on two ways: the process-wide [`Recorder`] switch, or
//! a request-scoped [`crate::trace::TraceContext`] installed on the
//! current thread. When either is active, [`Span::enter`] captures a
//! monotonic-clock start and stamps the span's causal identity —
//! `(trace_id, span_id, parent_id)` from the ambient context, so
//! [`Recorder::drain`] output can be reassembled into per-request trees
//! by [`crate::trace::build_trees`] — and dropping the span pushes a
//! [`SpanRecord`] into a bounded ring owned by the current thread.
//! Threads never contend on a shared buffer while recording — each ring
//! has its own lock touched only by its owner and by
//! [`Recorder::drain`], which merges all rings into one timeline.
//!
//! Per-connection (rather than process-wide) visibility is served by the
//! query-stage profile ([`crate::profile::QueryProfile`]), which rides on
//! the `Answer` itself; the recorder is the coarse, process-wide switch.

use crate::ring::Ring;
use crate::trace;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Capacity of each per-thread span ring; the oldest records are dropped
/// (and counted) once a thread has this many undrained spans.
pub const SPAN_RING_CAPACITY: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Drop counts carried over from rings pruned by [`Recorder::drain`]
/// after their owning thread exited — keeps [`Recorder::dropped`]
/// monotone across pruning.
static PRUNED_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Process start reference for span timestamps: all `start_nanos` are
/// offsets from the first call that needs a timestamp.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

type SharedRing = Arc<Mutex<Ring<SpanRecord>>>;

/// The registry of per-thread rings. Entries for exited threads are
/// pruned by [`Recorder::drain`] once emptied (the thread-local keeps a
/// second `Arc` while its thread lives, so `strong_count == 1` means
/// the owner is gone) — without that, a server spawning short-lived
/// threads would grow this vector forever.
fn all_rings() -> &'static Mutex<Vec<SharedRing>> {
    static RINGS: OnceLock<Mutex<Vec<SharedRing>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: SharedRing = {
        let ring = Arc::new(Mutex::new(Ring::new(SPAN_RING_CAPACITY)));
        all_rings()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&ring));
        ring
    };
}

/// One completed span: what ran, when it started (nanoseconds since the
/// recorder's process epoch), how long it took, its causal identity,
/// and any integer fields attached while it was open.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Static span name, e.g. `"eval_tp"` or `"snapshot_write"`.
    pub name: &'static str,
    /// Start offset in nanoseconds from the process epoch.
    pub start_nanos: u64,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
    /// Integer fields recorded while the span was open, in call order.
    pub fields: Vec<(&'static str, u64)>,
    /// The request trace this span belongs to (0: recorded with no
    /// ambient [`crate::trace::TraceContext`]).
    pub trace_id: u64,
    /// Process-unique id of this span (0 only in hand-built records).
    pub span_id: u64,
    /// Id of the span open when this one was entered (0: a root).
    pub parent_id: u64,
}

/// The process-wide recording switch and drain point.
pub struct Recorder;

impl Recorder {
    /// Starts recording spans process-wide.
    pub fn enable() {
        epoch(); // pin the time reference before the first span
        ENABLED.store(true, Ordering::Release);
    }

    /// Stops recording. Spans already buffered stay until drained.
    /// Request-scoped tracing (an installed
    /// [`crate::trace::TraceContext`]) is unaffected.
    pub fn disable() {
        ENABLED.store(false, Ordering::Release);
    }

    /// Whether spans are currently being recorded process-wide.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Removes and returns all buffered spans from every thread's ring,
    /// merged and sorted by start time. Rings whose owning thread has
    /// exited are pruned from the registry on the way (their drop
    /// counts are preserved in [`Recorder::dropped`]).
    pub fn drain() -> Vec<SpanRecord> {
        let mut rings = all_rings().lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        for ring in rings.iter() {
            out.extend(ring.lock().unwrap_or_else(PoisonError::into_inner).drain());
        }
        rings.retain(|ring| {
            if Arc::strong_count(ring) > 1 {
                return true; // the owning thread still holds its Arc
            }
            // Owner gone and the ring was just drained empty: fold its
            // lifetime drop count into the global carry and forget it.
            let dropped = ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .dropped();
            PRUNED_DROPPED.fetch_add(dropped, Ordering::Relaxed);
            false
        });
        drop(rings);
        out.sort_by_key(|r| r.start_nanos);
        out
    }

    /// Lifetime count of span records dropped because a thread's ring
    /// overflowed before being drained. Monotone — counts from rings
    /// pruned after their thread exited are carried over.
    pub fn dropped() -> u64 {
        let rings = all_rings().lock().unwrap_or_else(PoisonError::into_inner);
        PRUNED_DROPPED.load(Ordering::Relaxed)
            + rings
                .iter()
                .map(|r| r.lock().unwrap_or_else(PoisonError::into_inner).dropped())
                .sum::<u64>()
    }

    /// Number of per-thread rings currently registered (diagnostics:
    /// bounded by live threads once [`Recorder::drain`] has pruned).
    pub fn ring_count() -> usize {
        all_rings()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// An open span. Create with [`Span::enter`]; the measurement ends (and
/// the record is buffered) when the span is dropped.
#[must_use = "a span measures until dropped; binding it to `_` ends it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, u64)>,
    open: Option<trace::OpenSpan>,
}

impl Span {
    /// Opens a span. When the [`Recorder`] is disabled and no
    /// [`crate::trace::TraceContext`] is installed anywhere, this is
    /// inert: two relaxed atomic loads, no clock read, no allocation.
    /// When some *other* thread is traced but this one is not (and the
    /// recorder is off), one thread-local read is added — still no
    /// clock.
    pub fn enter(name: &'static str) -> Span {
        let globally = Recorder::is_enabled();
        let active = globally || (trace::any_context_active() && trace::has_ambient());
        if !active {
            return Span {
                name,
                start: None,
                fields: Vec::new(),
                open: None,
            };
        }
        let open = trace::open_span();
        Span {
            name,
            start: Some(Instant::now()),
            fields: Vec::new(),
            open: Some(open),
        }
    }

    /// Attaches an integer field (e.g. `span.record("nodes", n)`).
    /// No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.fields.push((key, value));
        }
    }

    /// Whether this span is actually measuring (recording was active at
    /// [`Span::enter`] time).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let open = self.open.take().expect("active spans carry an identity");
        trace::close_span(&open);
        let record = SpanRecord {
            name: self.name,
            start_nanos: start.duration_since(epoch()).as_nanos() as u64,
            nanos: start.elapsed().as_nanos() as u64,
            fields: std::mem::take(&mut self.fields),
            trace_id: open.trace_id,
            span_id: open.span_id,
            parent_id: open.parent_id,
        };
        if let Some(flight) = &open.flight {
            flight.push(record.clone());
        }
        LOCAL.with(|ring| {
            ring.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(record);
        });
    }
}

/// Serializes tests (within this crate) that flip the process-global
/// recorder or install ambient contexts on shared test threads.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        test_serial()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = serial();
        Recorder::disable();
        let _ = Recorder::drain();
        {
            let mut s = Span::enter("inert");
            assert!(!s.is_active());
            s.record("ignored", 1);
        }
        assert!(Recorder::drain().is_empty());
    }

    #[test]
    fn enabled_spans_capture_timing_and_fields() {
        let _guard = serial();
        Recorder::enable();
        let _ = Recorder::drain();
        {
            let mut s = Span::enter("work");
            assert!(s.is_active());
            s.record("items", 42);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        Recorder::disable();
        let spans = Recorder::drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(
            spans[0].nanos >= 1_000_000,
            "slept 2ms, got {}",
            spans[0].nanos
        );
        assert_eq!(spans[0].fields, vec![("items", 42)]);
        assert_eq!(spans[0].trace_id, 0, "no ambient context installed");
        assert_ne!(spans[0].span_id, 0, "span ids are allocated regardless");
        assert_eq!(spans[0].parent_id, 0);
    }

    #[test]
    fn drain_merges_threads_in_start_order() {
        let _guard = serial();
        Recorder::enable();
        let _ = Recorder::drain();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..3 {
                        let _s = Span::enter("t");
                    }
                });
            }
        });
        Recorder::disable();
        let spans = Recorder::drain();
        assert_eq!(spans.len(), 12);
        assert!(spans
            .windows(2)
            .all(|w| w[0].start_nanos <= w[1].start_nanos));
    }

    /// Regression test for the ring-registry leak: rings of exited
    /// threads must be pruned by drain, not accumulated forever, and
    /// their drop counts must survive the pruning.
    #[test]
    fn drain_prunes_rings_of_exited_threads() {
        let _guard = serial();
        Recorder::enable();
        let _ = Recorder::drain();
        let dropped_before = Recorder::dropped();
        const THREADS: usize = 64;
        const SPANS_PER_THREAD: usize = SPAN_RING_CAPACITY + 10; // force drops
        for _ in 0..THREADS {
            std::thread::spawn(|| {
                for _ in 0..SPANS_PER_THREAD {
                    let _s = Span::enter("short-lived");
                }
            })
            .join()
            .unwrap();
        }
        Recorder::disable();
        let grown = Recorder::ring_count();
        assert!(grown >= THREADS, "each thread registered a ring: {grown}");
        let drained = Recorder::drain();
        assert_eq!(
            drained.iter().filter(|r| r.name == "short-lived").count(),
            THREADS * SPAN_RING_CAPACITY,
            "each exited thread's retained spans were recovered"
        );
        assert!(
            Recorder::ring_count() <= grown - THREADS,
            "dead-thread rings pruned: {} left of {grown}",
            Recorder::ring_count()
        );
        assert_eq!(
            Recorder::dropped() - dropped_before,
            (THREADS * (SPANS_PER_THREAD - SPAN_RING_CAPACITY)) as u64,
            "drop counts survive pruning"
        );
        // A second drain is a no-op on the pruned registry.
        assert!(Recorder::drain().is_empty());
    }
}
