//! # pxv-obs — the observability substrate
//!
//! Every other layer of the system produces telemetry: the engine counts
//! queries and cache traffic, the server histograms request latency, the
//! catalog logs evictions, the store writes snapshots. Before this crate
//! each of those was a one-off — an `AtomicU64` here, a
//! `Mutex<VecDeque>` there — with no shared vocabulary, no export
//! format, and no way to ask *where a slow query spent its time*. This
//! crate is the shared vocabulary, std-only and dependency-free so every
//! layer (including `pxv-peval` at the bottom of the stack) can use it
//! without cycles:
//!
//! - [`ring::Ring`] — a bounded ring buffer that drops the oldest entry
//!   on overflow and counts what it dropped. Backs the engine's eviction
//!   log, the server's slow-query log, and the per-thread span rings.
//! - [`metrics`] — counters, gauges and fixed-bucket power-of-two
//!   histograms behind cloneable atomic handles, a [`metrics::Registry`]
//!   that names them, and Prometheus text exposition
//!   ([`metrics::Exposition`]) for the server's `METRICS` verb. Metric
//!   names follow `pxv_<layer>_<name>` (see `DESIGN.md` §12).
//! - [`span`] — a lightweight tracing facade: [`span::Span::enter`]
//!   costs two relaxed atomic loads when nothing records, and records
//!   monotonic-clock timings — stamped with a causal
//!   `(trace_id, span_id, parent_id)` identity — into a per-thread
//!   bounded ring when the process-wide [`span::Recorder`] or an
//!   installed [`trace::TraceContext`] is active.
//! - [`trace`] — request-scoped causal tracing: [`trace::TraceContext`]
//!   names a request, propagates across worker handoffs by explicit
//!   capture/install, optionally mirrors the request's spans into a
//!   bounded [`trace::FlightRecorder`], and [`trace::build_trees`]
//!   reassembles drained spans into per-request trees.
//! - [`export`] — Chrome `trace_event` JSON and plain-text renderings
//!   of drained spans, plus a std-only JSON parser/checker shared by
//!   tests, the CI trace-smoke job, and the `bench-diff` gate.
//! - [`profile`] — the per-query flight record: a stage breakdown
//!   (parse / plan / cache-probe / materialize / eval / serialize) that
//!   `pxv_engine::QueryOptions::profile(true)` makes an `Answer` carry,
//!   and the server's `PROFILE` verb serializes.
//! - [`slow`] — a thresholded slow-request log over a bounded ring,
//!   dumped by the server's `STATS SLOW` verb.
//! - [`keys`] — the canonical `STATS` wire-key list, so the server, the
//!   client and the e2e tests can never drift apart on key names.
//!
//! ```
//! use pxv_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("pxv_demo_requests_total", "Requests handled.");
//! let latency = registry.histogram("pxv_demo_request_us", "Request latency (µs).");
//! requests.inc();
//! latency.record(420);
//! let text = registry.render();
//! assert!(text.contains("pxv_demo_requests_total 1"));
//! assert!(text.contains("pxv_demo_request_us_count 1"));
//! ```

#![deny(missing_docs)]

pub mod export;
pub mod keys;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod slow;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Exposition, Gauge, Histogram, Registry};
pub use profile::QueryProfile;
pub use ring::Ring;
pub use slow::{SlowLog, SlowRecord};
pub use span::{Recorder, Span, SpanRecord};
pub use trace::{FlightRecorder, TraceContext, TraceTree};
