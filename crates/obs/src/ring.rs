//! A bounded ring buffer that drops the oldest entry on overflow.
//!
//! The system keeps several "most recent N events" logs — catalog
//! evictions, slow requests, span records. Before this type each one
//! hand-rolled the same `VecDeque` + capacity check (and one of them,
//! the eviction log, shipped unbounded first and had to be capped after
//! a pathological budget-flip loop grew it without limit). [`Ring`] is
//! that pattern once: push is O(1), overflow evicts the oldest entry,
//! and the number of dropped entries is counted so a reader can tell a
//! quiet log from a saturated one.

use std::collections::VecDeque;

/// A fixed-capacity FIFO ring: [`Ring::push`] beyond capacity drops the
/// oldest entry (and counts it). Not internally synchronized — wrap in a
/// `Mutex` for shared use, as the eviction and slow-query logs do.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` entries. A zero capacity
    /// is honored literally: every push is dropped (and counted).
    pub fn new(capacity: usize) -> Ring<T> {
        Ring {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends `value`, evicting the oldest entry if the ring is full.
    /// Returns the evicted entry, if any.
    pub fn push(&mut self, value: T) -> Option<T> {
        if self.capacity == 0 {
            self.dropped += 1;
            return Some(value);
        }
        let evicted = if self.buf.len() == self.capacity {
            self.dropped += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(value);
        evicted
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Removes and returns every entry, oldest first, leaving the ring
    /// empty (the drop counter is kept).
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of entries evicted (or refused) by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Empties the ring (the drop counter is kept).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_beyond_capacity_drops_oldest() {
        let mut r = Ring::new(3);
        assert!(r.is_empty());
        for i in 0..3 {
            assert_eq!(r.push(i), None);
        }
        assert_eq!(r.push(3), Some(0), "oldest entry evicted");
        assert_eq!(r.push(4), Some(1));
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.drain(), vec![2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2, "drain keeps the drop counter");
    }

    #[test]
    fn zero_capacity_refuses_everything() {
        let mut r = Ring::new(0);
        assert_eq!(r.push("x"), Some("x"));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut r = Ring::new(1);
        r.push(1);
        r.push(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }
}
