//! A thresholded slow-request log over a bounded [`Ring`].
//!
//! The server feeds every answered query through [`SlowLog::observe`];
//! requests at or above the threshold are kept (most recent
//! [`SLOW_LOG_CAPACITY`], oldest dropped) and dumped by the `STATS SLOW`
//! wire verb. The request text is built lazily so the fast path — a
//! request under threshold — costs one atomic load and one comparison.

use crate::ring::Ring;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Maximum retained slow-request records.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// One request that crossed the slow threshold.
#[derive(Clone, Debug)]
pub struct SlowRecord {
    /// Wall time the request took, in microseconds.
    pub micros: u64,
    /// The request line (as received on the wire).
    pub request: String,
    /// The request's rendered span tree, when tracing was active for
    /// the request (see [`crate::trace::FlightRecorder`]).
    pub trace: Option<String>,
}

/// The slow-request log: a threshold plus a bounded ring of offenders.
#[derive(Debug)]
pub struct SlowLog {
    threshold_nanos: AtomicU64,
    ring: Mutex<Ring<SlowRecord>>,
}

impl SlowLog {
    /// A log keeping requests that took at least `threshold_us`
    /// microseconds. A zero threshold keeps everything.
    pub fn new(threshold_us: u64) -> SlowLog {
        SlowLog {
            threshold_nanos: AtomicU64::new(threshold_us.saturating_mul(1_000)),
            ring: Mutex::new(Ring::new(SLOW_LOG_CAPACITY)),
        }
    }

    /// Current threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_nanos.load(Ordering::Relaxed) / 1_000
    }

    /// Replaces the threshold (takes effect for subsequent observations).
    pub fn set_threshold_us(&self, threshold_us: u64) {
        self.threshold_nanos
            .store(threshold_us.saturating_mul(1_000), Ordering::Relaxed);
    }

    /// Records the request iff `took` meets the threshold; `request` is
    /// only invoked (and the ring lock only taken) in that case. Returns
    /// whether the request was logged.
    pub fn observe(&self, took: Duration, request: impl FnOnce() -> String) -> bool {
        self.observe_traced(took, request, || None)
    }

    /// [`SlowLog::observe`] with a lazily-built span tree: `trace` runs
    /// only when the request qualifies, typically rendering the
    /// request's [`crate::trace::FlightRecorder`] contents — this is how
    /// `serve --slow-us` captures the full causal tree of each
    /// offending query, not just its total.
    pub fn observe_traced(
        &self,
        took: Duration,
        request: impl FnOnce() -> String,
        trace: impl FnOnce() -> Option<String>,
    ) -> bool {
        let nanos = took.as_nanos().min(u64::MAX as u128) as u64;
        if nanos < self.threshold_nanos.load(Ordering::Relaxed) {
            return false;
        }
        let record = SlowRecord {
            micros: nanos / 1_000,
            request: request(),
            trace: trace(),
        };
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(record);
        true
    }

    /// Snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<SlowRecord> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring since creation — `len() + dropped()`
    /// is the lifetime total of logged slow requests.
    pub fn dropped(&self) -> u64 {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_applies_threshold_lazily() {
        let log = SlowLog::new(1_000); // 1ms
        let logged = log.observe(Duration::from_micros(10), || {
            panic!("request builder must not run under threshold")
        });
        assert!(!logged);
        assert!(log.is_empty());
        assert!(log.observe(Duration::from_micros(1_000), || "QUERY slow".into()));
        let records = log.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].micros, 1_000);
        assert_eq!(records[0].request, "QUERY slow");
        assert!(records[0].trace.is_none());
    }

    #[test]
    fn observe_traced_attaches_the_tree_lazily() {
        let log = SlowLog::new(1_000);
        let fast = log.observe_traced(
            Duration::from_micros(10),
            || unreachable!("under threshold"),
            || unreachable!("under threshold"),
        );
        assert!(!fast);
        assert!(log.observe_traced(
            Duration::from_micros(2_000),
            || "QUERY slow".into(),
            || Some("trace 1\n  request 2000.000us".into()),
        ));
        let records = log.records();
        assert_eq!(records[0].trace.as_deref().unwrap().lines().count(), 2);
    }

    #[test]
    fn threshold_is_adjustable_and_ring_is_bounded() {
        let log = SlowLog::new(0);
        assert_eq!(log.threshold_us(), 0);
        log.set_threshold_us(5);
        assert_eq!(log.threshold_us(), 5);
        assert!(!log.observe(Duration::from_micros(4), || unreachable!()));
        for i in 0..(SLOW_LOG_CAPACITY + 10) {
            log.observe(Duration::from_micros(10), || format!("q{i}"));
        }
        let records = log.records();
        assert_eq!(records.len(), SLOW_LOG_CAPACITY);
        assert_eq!(records[0].request, "q10", "oldest entries were dropped");
        assert_eq!(log.dropped(), 10);
    }
}
