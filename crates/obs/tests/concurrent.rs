//! Concurrency tests for the observability substrate, in the antagonist
//! style of `tests/budget.rs`: worker threads hammer an instrument while
//! an antagonist flips global state underneath them, and the test checks
//! the conservation laws that must survive the race.

use pxv_obs::span::{Recorder, Span, SPAN_RING_CAPACITY};
use pxv_obs::{Histogram, Registry, SlowLog};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Concurrent histogram recording must lose no samples: the final count
/// and sum equal what the writers claim to have recorded, and bucket
/// counts in the rendered exposition are cumulative and monotone.
#[test]
fn histogram_survives_concurrent_recording() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Histogram::new();
    let recorded_sum = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = h.clone();
            let recorded_sum = &recorded_sum;
            scope.spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..PER_THREAD {
                    // Mix magnitudes so many buckets are exercised.
                    let v = (i % 17) + ((t as u64) << (i % 13));
                    h.record(v);
                    local_sum += v;
                }
                recorded_sum.fetch_add(local_sum, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.sum(), recorded_sum.load(Ordering::Relaxed));

    let registry = Registry::new();
    registry.attach_histogram("pxv_test_conc_us", "Concurrent samples.", h.clone());
    let text = registry.render();
    let mut last = 0u64;
    let mut bucket_lines = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("pxv_test_conc_us_bucket{le=\"") {
            let value: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
            assert!(value >= last, "cumulative buckets must be monotone: {line}");
            last = value;
            bucket_lines += 1;
        }
    }
    assert_eq!(bucket_lines, 33, "32 power-of-two buckets plus +Inf");
    assert_eq!(
        last,
        THREADS as u64 * PER_THREAD,
        "+Inf bucket holds everything"
    );
}

/// Writers record spans while an antagonist toggles the global recorder.
/// Whatever subset of spans lands must merge cleanly: the drain is
/// sorted by start time, and records + drops exactly account for every
/// span that was active at enter time — none invented, none lost.
#[test]
fn span_rings_merge_under_recorder_antagonist() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;
    Recorder::enable();
    let _ = Recorder::drain();
    let dropped_before = Recorder::dropped();
    let stop = AtomicBool::new(false);
    let attempted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let antagonist = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                Recorder::disable();
                std::thread::yield_now();
                Recorder::enable();
                std::thread::yield_now();
            }
        });
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let attempted = &attempted;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let mut span = Span::enter("antagonized");
                        if span.is_active() {
                            attempted.fetch_add(1, Ordering::Relaxed);
                        }
                        span.record("writer", w as u64);
                        span.record("i", i);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // Stop the antagonist *before* leaving the scope: nothing else
        // will, and the scope's implicit join would deadlock.
        stop.store(true, Ordering::Relaxed);
        antagonist.join().unwrap();
    });
    // The antagonist may have starved in its disabled half-cycle for the
    // writers' whole (fast, mostly-inert) run; one span recorded with
    // the recorder deterministically on guarantees there is something to
    // drain regardless of how that race went.
    Recorder::enable();
    {
        let mut span = Span::enter("antagonized");
        assert!(span.is_active());
        attempted.fetch_add(1, Ordering::Relaxed);
        span.record("writer", WRITERS as u64);
        span.record("i", 0);
    }
    let drained = Recorder::drain();
    Recorder::disable();

    let kept = drained.len() as u64;
    let dropped = Recorder::dropped() - dropped_before;
    let active = attempted.load(Ordering::Relaxed);
    assert!(active >= 1);
    assert_eq!(
        kept + dropped,
        active,
        "every active span is either drained or counted as dropped"
    );
    assert!(
        drained
            .windows(2)
            .all(|w| w[0].start_nanos <= w[1].start_nanos),
        "drain merges per-thread rings into start order"
    );
    for record in &drained {
        assert_eq!(record.name, "antagonized");
        assert_eq!(record.fields.len(), 2);
        assert_eq!(record.fields[0].0, "writer");
    }
    // Per-thread rings are bounded: one drain can never exceed
    // rings × capacity (writers + antagonist + this thread).
    assert!(kept <= ((WRITERS + 2) * SPAN_RING_CAPACITY) as u64);
}

/// A scraper renders the exposition while a writer keeps publishing new
/// "epochs" (bumping counters then the epoch gauge, the way the server
/// samples the engine's published epoch at scrape time). Every scrape
/// must parse, and counter samples must be monotone from one scrape to
/// the next — a scrape can never observe a counter going backwards,
/// whatever instant it raced the writer at.
#[test]
fn metrics_scrape_races_epoch_publisher_monotonically() {
    let registry = std::sync::Arc::new(Registry::new());
    let queries = registry.counter("pxv_test_race_queries_total", "Queries.");
    let epoch = registry.gauge("pxv_test_race_epoch", "Published epoch.");
    let stop = AtomicBool::new(false);
    let mut last_queries = 0u64;
    let mut last_epoch_seen = 0u64;
    std::thread::scope(|scope| {
        let writer = {
            let queries = queries.clone();
            let epoch = epoch.clone();
            let stop = &stop;
            scope.spawn(move || {
                for e in 1..=1_000u64 {
                    for _ in 0..37 {
                        queries.inc();
                    }
                    epoch.set(e); // publish
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            })
        };
        for _ in 0..200 {
            let text = registry.render();
            let mut scraped_queries = None;
            let mut scraped_epoch = None;
            for line in text.lines() {
                if let Some(v) = line.strip_prefix("pxv_test_race_queries_total ") {
                    scraped_queries = Some(v.parse::<u64>().expect("numeric counter"));
                }
                if let Some(v) = line.strip_prefix("pxv_test_race_epoch ") {
                    scraped_epoch = Some(v.parse::<u64>().expect("numeric gauge"));
                }
            }
            let q = scraped_queries.expect("counter rendered");
            let e = scraped_epoch.expect("gauge rendered");
            assert!(
                q >= last_queries,
                "counter went backwards across scrapes: {q} < {last_queries}"
            );
            last_queries = q;
            last_epoch_seen = last_epoch_seen.max(e);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    });
    assert!(last_epoch_seen >= 1, "the race actually overlapped");
    assert_eq!(queries.get(), 37_000, "no increments were lost");
}

/// Concurrent observers of a slow log with a flapping threshold: the log
/// never exceeds its capacity and only over-threshold entries are kept.
#[test]
fn slow_log_bounded_under_threshold_flapping() {
    let log = SlowLog::new(50);
    std::thread::scope(|scope| {
        let log = &log;
        scope.spawn(move || {
            for _ in 0..500 {
                log.set_threshold_us(10);
                std::thread::yield_now();
                log.set_threshold_us(90);
                std::thread::yield_now();
            }
        });
        for t in 0..4 {
            scope.spawn(move || {
                for i in 0..2_000u64 {
                    log.observe(Duration::from_micros(40 + (i % 30)), || {
                        format!("q t={t} i={i}")
                    });
                }
            });
        }
    });
    let records = log.records();
    assert!(records.len() <= pxv_obs::slow::SLOW_LOG_CAPACITY);
    assert!(records.iter().all(|r| (40..70).contains(&r.micros)));
}
