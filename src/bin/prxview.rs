//! `prxview` — command-line front end for the library, built on the
//! stateful [`prxview::engine::Engine`].
//!
//! ```text
//! prxview eval    <pdoc-file> <query>            probabilistic answers
//! prxview worlds  <pdoc-file> [limit]            enumerate ⟦P̂⟧
//! prxview plan    <query> name=pattern…          find a rewriting
//! prxview answer  <pdoc-file> <query> name=pattern…
//!                                                answer using views only
//! prxview batch   <pdoc-file> <query-file> [-jN] name=pattern…
//!                                                concurrent batch answering
//! prxview cindep  <q1> <q2>                      c-independence test
//! prxview advise  --doc <pdoc-file> --workload <file> [--view name=pattern]…
//!                 [--budget N] [--top K] [--auto]
//!                                                propose views for a workload
//! prxview edit    <pdoc-file> <edit-spec>...     apply edits, print the result
//! prxview gen     personnel <persons> [projects] [seed]
//!                                                print a generated p-document
//! prxview save    <store-dir> --doc name=file… [--no-warm] [name=pattern]…
//!                                                build, warm and snapshot an engine
//! prxview load    <store-dir> [<doc> <query>]    inspect (and query) a snapshot
//! prxview serve   [--port P] [--addr H] [-jN] [--max-conn M] [--slow-us T]
//!                 [--store DIR] [--doc name=file]… [name=pattern]…
//!                                                run the prxd TCP server
//! prxview metrics [host:port]                    scrape a server's METRICS
//!                                                (Prometheus text) to stdout
//! prxview trace   <host:port> [out.json]         drain a server's recorded
//!                                                spans (TRACE DUMP) into a
//!                                                Chrome trace JSON file
//! ```
//!
//! P-document files use the `pxv-pxml` text syntax, e.g.
//! `a[mux(0.3: b, 0.6: c[d])]`; queries use XPath-ish notation, e.g.
//! `a//c[d]`. `answer` reports the chosen plan and per-query stats on
//! stderr; when no probabilistic rewriting exists it exits non-zero with
//! the planner's typed reason. `batch` reads one query per line (blank
//! lines and `#` comments skipped), answers them on `N` worker threads
//! (default: available parallelism) against the shared sharded catalog,
//! and reports throughput plus engine-lifetime cache stats on stderr.
//! `edit` applies a sequence of typed edits (`'insert n4 0.5 b[c]'`,
//! `'delete n7'`, `'setprob n2 0.25'`, `'relabel n3 newname'` — the
//! `pxv_pxml::edit` wire grammar) to a p-document file and prints the
//! post-edit document on stdout; a running server takes the same specs
//! live through the protocol's `UPDATE` verb, maintaining its cached
//! view extensions incrementally instead of rematerializing.
//! `serve` exposes the engine over TCP (the `pxv-server` wire protocol):
//! documents and views can be preloaded from the command line or loaded
//! live through the protocol's `LOAD`/`VIEW` requests; drive it with
//! `prxload` or any line-oriented TCP client (`nc` included). The server
//! is evented: `-jN` sizes the request-execution pool only, while
//! `--max-conn M` is a real cap on concurrently open sockets — many
//! idle or pipelining connections multiplex over a few workers, and
//! reads are answered from published MVCC engine epochs so `QUERY`
//! traffic never waits behind an `UPDATE`. With
//! `--store DIR` the server restores `DIR/engine.pxv` on boot (warm
//! cache, zero re-materialization, bit-identical answers) and snapshots
//! the engine back on graceful shutdown (the protocol's `SHUTDOWN`
//! request). `save`/`load` manage the same snapshots offline, and parse
//! errors print with `file:line:col` context plus a caret instead of
//! bare byte offsets.
//! `advise` replays an offline workload trace (one query per line,
//! optionally prefixed by an integer multiplicity; blank lines and `#`
//! comments skipped) into the engine's query log and runs the view
//! advisor against a byte budget: each candidate prints as one line,
//! and the final `advise: … coverage=…` summary line is greppable —
//! CI asserts nonzero coverage on it. With `--auto` the admitted
//! candidates are registered before the report prints.

use prxview::engine::{Engine, EngineError, QueryOptions};
use prxview::pxml::text::parse_pdocument;
use prxview::pxml::PDocument;
use prxview::rewrite::View;
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  prxview eval <pdoc-file> <query>\n  prxview worlds <pdoc-file> [limit]\n  \
         prxview plan <query> name=pattern...\n  prxview answer <pdoc-file> <query> name=pattern...\n  \
         prxview batch <pdoc-file> <query-file> [-jN] name=pattern...\n  \
         prxview cindep <q1> <q2>\n  \
         prxview advise --doc <pdoc-file> --workload <file> [--view name=pattern]... \
         [--budget N] [--top K] [--auto]\n  \
         prxview edit <pdoc-file> <edit-spec>...\n  \
         prxview gen personnel <persons> [projects] [seed]\n  \
         prxview save <store-dir> --doc name=file... [--no-warm] [name=pattern]...\n  \
         prxview load <store-dir> [<doc> <query>]\n  \
         prxview serve [--port P] [--addr H] [-jN] [--max-conn M] [--slow-us T] [--store DIR] \
         [--doc name=file]... [name=pattern]...\n  \
         prxview metrics [host:port]\n  \
         prxview trace <host:port> [out.json]"
    );
    ExitCode::from(2)
}

/// Reads and parses a p-document file. Parse failures render with
/// `file:line:col` context and a caret (not a bare byte offset, and
/// never a `Debug` dump).
fn load_pdoc(path: &str) -> Result<PDocument, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Parse the file verbatim (the grammar skips whitespace), so error
    // offsets map to real line/column positions in the file.
    parse_pdocument(&text).map_err(|e| e.render(path, &text))
}

fn load_query(s: &str) -> Result<TreePattern, String> {
    parse_pattern(s).map_err(|e| e.render("query", s))
}

fn parse_views(args: &[String]) -> Result<Vec<View>, String> {
    args.iter()
        .map(|a| {
            let (name, pattern) = a
                .split_once('=')
                .ok_or_else(|| format!("view `{a}` must be name=pattern"))?;
            Ok(View::new(name, load_query(pattern)?))
        })
        .collect()
}

/// Builds an engine with the given views registered; the CLI inherits the
/// library default interleaving limit through `QueryOptions::default()`.
fn engine_with_views(views: Vec<View>) -> Result<Engine, String> {
    let mut engine = Engine::with_options(QueryOptions::default());
    engine.register_views(views).map_err(|e| e.to_string())?;
    Ok(engine)
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("eval") if args.len() == 3 => {
            let mut engine = Engine::new();
            let doc = engine
                .add_document("doc", load_pdoc(&args[1])?)
                .map_err(|e| format!("{}: {e}", args[1]))?;
            let q = load_query(&args[2])?;
            let answer = engine.answer_direct(doc, &q).map_err(|e| e.to_string())?;
            for (n, p) in answer.nodes {
                println!("{n}\t{p:.9}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("worlds") if args.len() >= 2 => {
            let pdoc = load_pdoc(&args[1])?;
            pdoc.validate().map_err(|e| format!("{}: {e}", args[1]))?;
            let limit: usize = args
                .get(2)
                .map(|s| s.parse().map_err(|e| format!("bad limit: {e}")))
                .transpose()?
                .unwrap_or(1 << 16);
            let space = pdoc
                .px_space_limited(limit)
                .ok_or("possible-world space exceeds the limit")?;
            for (w, p) in space.worlds() {
                println!("{p:.9}\t{w}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("plan") if args.len() >= 3 => {
            let q = load_query(&args[1])?;
            let engine = engine_with_views(parse_views(&args[2..])?)?;
            match engine.plan(&q) {
                Ok(pl) => {
                    println!("{}", pl.describe(engine.catalog().views()));
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    println!("{e}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        Some("answer") if args.len() >= 4 => {
            let mut engine = engine_with_views(parse_views(&args[3..])?)?;
            let doc = engine
                .add_document("doc", load_pdoc(&args[1])?)
                .map_err(|e| format!("{}: {e}", args[1]))?;
            let q = load_query(&args[2])?;
            match engine.answer(doc, &q) {
                Ok(answer) => {
                    eprintln!("plan: {}", answer.description);
                    eprintln!(
                        "stats: {} extension(s) touched, {} materialized, {} candidate(s)",
                        answer.stats.extensions_touched,
                        answer.stats.materializations,
                        answer.stats.candidates
                    );
                    for (n, p) in answer.nodes {
                        println!("{n}\t{p:.9}");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                Err(EngineError::Plan(e)) => {
                    eprintln!("{e}; use `eval` for direct evaluation");
                    Ok(ExitCode::FAILURE)
                }
                Err(e) => Err(e.to_string()),
            }
        }
        Some("batch") if args.len() >= 4 => {
            // Optional `-jN` worker-count flag anywhere after the files.
            let mut threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let mut view_args = Vec::new();
            for a in &args[3..] {
                if let Some(n) = a.strip_prefix("-j") {
                    threads = n.parse().map_err(|e| format!("bad -j flag `{a}`: {e}"))?;
                } else {
                    view_args.push(a.clone());
                }
            }
            let mut engine = engine_with_views(parse_views(&view_args)?)?;
            let doc = engine
                .add_document("doc", load_pdoc(&args[1])?)
                .map_err(|e| format!("{}: {e}", args[1]))?;
            let text = std::fs::read_to_string(&args[2])
                .map_err(|e| format!("cannot read {}: {e}", args[2]))?;
            let queries: Vec<(prxview::engine::DocId, TreePattern)> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(|l| Ok((doc, load_query(l)?)))
                .collect::<Result<_, String>>()?;
            if queries.is_empty() {
                return Err(format!("{}: no queries", args[2]));
            }
            let t0 = std::time::Instant::now();
            let results = engine.answer_batch_with(&queries, engine.options(), threads);
            let elapsed = t0.elapsed();
            let mut failed = 0usize;
            for ((_, q), result) in queries.iter().zip(&results) {
                match result {
                    Ok(answer) => {
                        let nodes: Vec<String> = answer
                            .nodes
                            .iter()
                            .map(|(n, p)| format!("{n}:{p:.9}"))
                            .collect();
                        println!("{q}\t{}", nodes.join(" "));
                    }
                    Err(e) => {
                        failed += 1;
                        println!("{q}\terror: {e}");
                    }
                }
            }
            let stats = engine.stats();
            eprintln!(
                "batch: {} queries on {} thread(s) in {:.3} ms ({:.0} q/s); \
                 {} materialization(s), {} cache hit(s), {} failed",
                queries.len(),
                threads,
                elapsed.as_secs_f64() * 1e3,
                queries.len() as f64 / elapsed.as_secs_f64(),
                stats.materializations,
                stats.cache_hits,
                failed
            );
            Ok(if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("edit") if args.len() >= 3 => {
            let mut pdoc = load_pdoc(&args[1])?;
            for spec in &args[2..] {
                let edit =
                    prxview::pxml::Edit::parse(spec).map_err(|e| format!("`{spec}`: {e}"))?;
                let effect = pdoc
                    .apply_edit(&edit)
                    .map_err(|e| format!("`{spec}`: {e}"))?;
                match effect.inserted_root {
                    Some(root) => eprintln!("applied: {edit} (inserted root {root})"),
                    None => eprintln!("applied: {edit}"),
                }
            }
            pdoc.validate()
                .map_err(|e| format!("post-edit document invalid: {e}"))?;
            println!("{pdoc}");
            Ok(ExitCode::SUCCESS)
        }
        Some("gen") if args.len() >= 3 && args[1] == "personnel" => {
            let persons: usize = args[2].parse().map_err(|e| format!("bad persons: {e}"))?;
            let projects: usize = args
                .get(3)
                .map(|s| s.parse().map_err(|e| format!("bad projects: {e}")))
                .transpose()?
                .unwrap_or(3);
            let seed: u64 = args
                .get(4)
                .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
                .transpose()?
                .unwrap_or(9);
            let (pdoc, _) = prxview::pxml::generators::personnel(persons, projects, seed);
            println!("{pdoc}");
            Ok(ExitCode::SUCCESS)
        }
        Some("save") if args.len() >= 2 => {
            let mut warm = true;
            let mut doc_specs: Vec<(String, String)> = Vec::new();
            let mut view_args = Vec::new();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--doc" => {
                        let spec = args
                            .get(i + 1)
                            .ok_or_else(|| "--doc needs a value".to_string())?;
                        let (name, file) = spec
                            .split_once('=')
                            .ok_or_else(|| format!("--doc `{spec}` must be name=file"))?;
                        doc_specs.push((name.to_string(), file.to_string()));
                        i += 2;
                    }
                    "--no-warm" => {
                        warm = false;
                        i += 1;
                    }
                    _ => {
                        view_args.push(args[i].clone());
                        i += 1;
                    }
                }
            }
            if doc_specs.is_empty() {
                return Err("save: at least one --doc name=file is required".into());
            }
            let mut engine = engine_with_views(parse_views(&view_args)?)?;
            let mut docs = Vec::new();
            for (name, file) in &doc_specs {
                let id = engine
                    .add_document(name, load_pdoc(file)?)
                    .map_err(|e| format!("--doc {name}: {e}"))?;
                docs.push(id);
            }
            if warm {
                for &doc in &docs {
                    engine.warm(doc).map_err(|e| e.to_string())?;
                }
            }
            let store = prxview::store::Store::open(&args[1]).map_err(|e| e.to_string())?;
            let snapshot = engine.snapshot();
            let bytes = store.save(&snapshot).map_err(|e| e.to_string())?;
            eprintln!(
                "saved {} to {} ({bytes} bytes)",
                snapshot.describe(),
                store.snapshot_path().display()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("load") if matches!(args.len(), 2 | 4) => {
            let store = prxview::store::Store::open(&args[1]).map_err(|e| e.to_string())?;
            let snapshot = store.load().map_err(|e| e.to_string())?;
            eprintln!(
                "{} ({})",
                snapshot.describe(),
                store.snapshot_path().display()
            );
            for (i, (name, pdoc)) in snapshot.documents.iter().enumerate() {
                let cached = snapshot.extensions.iter().filter(|e| e.doc == i).count();
                eprintln!(
                    "  doc `{name}`: {} node(s), {cached} cached extension(s)",
                    pdoc.len()
                );
            }
            for view in &snapshot.views {
                eprintln!("  view `{}`: {}", view.name, view.pattern);
            }
            if args.len() == 4 {
                // Answer one query from the restored (warm) engine.
                let engine = Engine::from_snapshot(snapshot).map_err(|e| e.to_string())?;
                let doc = engine
                    .find_document(&args[2])
                    .ok_or_else(|| format!("no document named `{}` in snapshot", args[2]))?;
                let q = load_query(&args[3])?;
                let answer = engine.answer(doc, &q).map_err(|e| e.to_string())?;
                eprintln!("plan: {}", answer.description);
                eprintln!(
                    "stats: {} extension(s) touched, {} materialized",
                    answer.stats.extensions_touched, answer.stats.materializations
                );
                for (n, p) in answer.nodes {
                    println!("{n}\t{p:.9}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("serve") => {
            let mut host = "127.0.0.1".to_string();
            let mut port = 7878u16;
            let mut config = prxview::server::serve::ServerConfig::default();
            let mut store_dir: Option<String> = None;
            let mut doc_specs: Vec<(String, String)> = Vec::new();
            let mut view_args = Vec::new();
            let mut i = 1;
            let value = |args: &[String], i: usize| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{} needs a value", args[i]))
            };
            while i < args.len() {
                match args[i].as_str() {
                    "--port" => {
                        port = value(&args, i)?
                            .parse()
                            .map_err(|e| format!("bad --port: {e}"))?;
                        i += 2;
                    }
                    "--addr" => {
                        host = value(&args, i)?;
                        i += 2;
                    }
                    "--max-conn" => {
                        config.max_connections = value(&args, i)?
                            .parse()
                            .map_err(|e| format!("bad --max-conn: {e}"))?;
                        i += 2;
                    }
                    "--slow-us" => {
                        config.slow_threshold_us = value(&args, i)?
                            .parse()
                            .map_err(|e| format!("bad --slow-us: {e}"))?;
                        i += 2;
                    }
                    "--store" => {
                        store_dir = Some(value(&args, i)?);
                        i += 2;
                    }
                    "--doc" => {
                        let spec = value(&args, i)?;
                        let (name, file) = spec
                            .split_once('=')
                            .ok_or_else(|| format!("--doc `{spec}` must be name=file"))?;
                        doc_specs.push((name.to_string(), file.to_string()));
                        i += 2;
                    }
                    a if a.starts_with("-j") => {
                        config.workers = a[2..].parse().map_err(|e| format!("bad {a}: {e}"))?;
                        i += 1;
                    }
                    _ => {
                        view_args.push(args[i].clone());
                        i += 1;
                    }
                }
            }
            // With --store, boot from the snapshot (warm cache, restored
            // epoch) and layer any --doc / view arguments on top.
            let store = store_dir
                .map(prxview::store::Store::open)
                .transpose()
                .map_err(|e| e.to_string())?;
            let mut engine = match &store {
                Some(store) if store.has_snapshot() => {
                    // Lazy boot: only the section directory is decoded
                    // here, so the server starts answering while
                    // extension sections are still encoded — each faults
                    // in on its first probe.
                    let snapshot = store.load_lazy().map_err(|e| e.to_string())?;
                    eprintln!(
                        "restored {} from {}",
                        snapshot.describe(),
                        store.snapshot_path().display()
                    );
                    Engine::from_snapshot_lazy_with(snapshot, QueryOptions::default())
                        .map_err(|e| e.to_string())?
                }
                _ => Engine::with_options(QueryOptions::default()),
            };
            // `--doc` is an upsert over the restored snapshot (like the
            // wire LOAD verb), so re-running the same command line after
            // a graceful shutdown just works: an unchanged file keeps the
            // restored document *and its warm cache*; a changed file
            // replaces the content (invalidating that document's cache).
            for (name, file) in &doc_specs {
                let pdoc = load_pdoc(file)?;
                match engine.find_document(name) {
                    Some(id)
                        if engine.document(id).map_err(|e| e.to_string())?.to_string()
                            == pdoc.to_string() => {}
                    Some(id) => engine
                        .replace_document(id, pdoc)
                        .map_err(|e| format!("--doc {name}: {e}"))?,
                    None => {
                        engine
                            .add_document(name, pdoc)
                            .map_err(|e| format!("--doc {name}: {e}"))?;
                    }
                }
            }
            // Views have no replace operation: a restored view with the
            // same name is kept if its pattern matches, and a conflicting
            // pattern is a hard error rather than a silent divergence.
            for view in parse_views(&view_args)? {
                match engine.catalog().find(&view.name) {
                    Some(id)
                        if engine.catalog().view(id).pattern.canonical_key()
                            == view.pattern.canonical_key() => {}
                    Some(_) => {
                        return Err(format!(
                            "view `{}` exists in the snapshot with a different pattern",
                            view.name
                        ))
                    }
                    None => {
                        engine.register_view(view).map_err(|e| e.to_string())?;
                    }
                }
            }
            // Bracket bare IPv6 hosts so `host:port` stays resolvable.
            config.addr = if host.contains(':') && !host.starts_with('[') {
                format!("[{host}]:{port}")
            } else {
                format!("{host}:{port}")
            };
            let mut handle = prxview::server::serve::serve(engine, &config)
                .map_err(|e| format!("bind {}: {e}", config.addr))?;
            eprintln!(
                "prxd listening on {} (evented: {} worker threads multiplexing \
                 up to {} connections); \
                 protocol: LOAD/VIEW/WARM/QUERY/PROFILE/BATCH/STATS/METRICS/INVALIDATE/\
                 SAVE/RESTORE/SHUTDOWN/PING/QUIT",
                handle.addr(),
                config.workers,
                config.max_connections
            );
            handle.join();
            // Graceful shutdown (the SHUTDOWN request): persist the final
            // engine state so the next `serve --store` boots warm.
            if let Some(store) = &store {
                let snapshot = handle.with_engine(|e| e.snapshot());
                let bytes = store
                    .save(&snapshot)
                    .map_err(|e| format!("saving shutdown snapshot: {e}"))?;
                eprintln!(
                    "snapshot saved: {} to {} ({bytes} bytes)",
                    snapshot.describe(),
                    store.snapshot_path().display()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("advise") if args.len() >= 2 => {
            use prxview::engine::AdviseOptions;
            let mut doc_file: Option<String> = None;
            let mut workload_file: Option<String> = None;
            let mut view_args = Vec::new();
            let mut budget = u64::MAX;
            let mut top = AdviseOptions::default().max_candidates;
            let mut auto = false;
            let mut i = 1;
            let value = |args: &[String], i: usize| -> Result<String, String> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("{} needs a value", args[i]))
            };
            while i < args.len() {
                match args[i].as_str() {
                    "--doc" => {
                        doc_file = Some(value(&args, i)?);
                        i += 2;
                    }
                    "--workload" => {
                        workload_file = Some(value(&args, i)?);
                        i += 2;
                    }
                    "--view" => {
                        view_args.push(value(&args, i)?);
                        i += 2;
                    }
                    "--budget" => {
                        budget = value(&args, i)?
                            .parse()
                            .map_err(|e| format!("bad --budget: {e}"))?;
                        i += 2;
                    }
                    "--top" => {
                        top = value(&args, i)?
                            .parse()
                            .map_err(|e| format!("bad --top: {e}"))?;
                        i += 2;
                    }
                    "--auto" => {
                        auto = true;
                        i += 1;
                    }
                    other => return Err(format!("advise: unknown argument `{other}`")),
                }
            }
            let doc_file = doc_file.ok_or("advise: --doc <pdoc-file> is required")?;
            let workload_file = workload_file.ok_or("advise: --workload <file> is required")?;
            let mut engine = engine_with_views(parse_views(&view_args)?)?;
            let doc = engine
                .add_document("doc", load_pdoc(&doc_file)?)
                .map_err(|e| format!("{doc_file}: {e}"))?;
            // Replay the trace: `[count] query` per line, count defaults
            // to 1 (a leading integer only counts as a multiplicity when
            // a query follows it).
            let text = std::fs::read_to_string(&workload_file)
                .map_err(|e| format!("cannot read {workload_file}: {e}"))?;
            let mut replayed = 0u64;
            for line in text.lines().map(str::trim) {
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let (count, query_text) = match line.split_once(char::is_whitespace) {
                    Some((head, rest)) if !rest.trim().is_empty() => match head.parse::<u64>() {
                        Ok(n) => (n, rest.trim()),
                        Err(_) => (1, line),
                    },
                    _ => (1, line),
                };
                let q = load_query(query_text)?;
                engine
                    .record_query(doc, &q, count)
                    .map_err(|e| e.to_string())?;
                replayed += count;
            }
            if replayed == 0 {
                return Err(format!("{workload_file}: no queries"));
            }
            let options = AdviseOptions {
                budget,
                max_candidates: top.max(1),
                ..AdviseOptions::default()
            };
            let report = if auto {
                let (report, registered) = engine
                    .advise_and_register(&options)
                    .map_err(|e| e.to_string())?;
                eprintln!("registered {} view(s)", registered.len());
                report
            } else {
                engine.advise(&options)
            };
            for c in &report.candidates {
                println!(
                    "{} {} covered={} weight={} marginal={} bytes={} score={:.3} pattern={}",
                    c.name,
                    if c.admitted { "admitted" } else { "skipped" },
                    c.covered,
                    c.weight,
                    c.marginal_weight,
                    c.projected_bytes,
                    c.score,
                    c.pattern,
                );
            }
            // The greppable summary line (CI asserts on `coverage=`).
            println!(
                "advise: logged={} distinct={} candidates={} admitted={} \
                 admitted_bytes={} coverage={}",
                report.logged,
                report.distinct,
                report.candidates.len(),
                report.admitted().count(),
                report.admitted_bytes(),
                report.coverage(),
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("metrics") if args.len() <= 2 => {
            // Scrape a running server's Prometheus exposition — the CLI
            // half of the observability loop (`serve` is the other).
            let addr = args.get(1).cloned().unwrap_or("127.0.0.1:7878".into());
            let mut client = prxview::server::client::Client::connect(&addr)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let text = client.metrics().map_err(|e| e.to_string())?;
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        Some("trace") if matches!(args.len(), 2 | 3) => {
            // Drain a running server's recorded spans (`TRACE DUMP`) and
            // write them as Chrome trace JSON, loadable in
            // about:tracing or https://ui.perfetto.dev. The dump is
            // validated before it is written — a truncated or malformed
            // file would fail silently in the viewer instead.
            let addr = &args[1];
            let out = args.get(2).map(String::as_str).unwrap_or("trace.json");
            let mut client = prxview::server::client::Client::connect(addr)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let json = client.trace_dump().map_err(|e| e.to_string())?;
            let events = prxview::obs::export::check_chrome_trace(&json)
                .map_err(|e| format!("server returned an invalid trace dump: {e}"))?;
            std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("trace: wrote {events} spans to {out}");
            Ok(ExitCode::SUCCESS)
        }
        Some("cindep") if args.len() == 3 => {
            let q1 = load_query(&args[1])?;
            let q2 = load_query(&args[2])?;
            let indep = prxview::rewrite::c_independent(&q1, &q2);
            println!("{}", if indep { "c-independent" } else { "dependent" });
            Ok(if indep {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
