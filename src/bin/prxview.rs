//! `prxview` — command-line front end for the library.
//!
//! ```text
//! prxview eval    <pdoc-file> <query>            probabilistic answers
//! prxview worlds  <pdoc-file> [limit]            enumerate ⟦P̂⟧
//! prxview plan    <query> name=pattern…          find a rewriting
//! prxview answer  <pdoc-file> <query> name=pattern…
//!                                                answer using views only
//! prxview cindep  <q1> <q2>                      c-independence test
//! ```
//!
//! P-document files use the `pxv-pxml` text syntax, e.g.
//! `a[mux(0.3: b, 0.6: c[d])]`; queries use XPath-ish notation, e.g.
//! `a//c[d]`.

use prxview::pxml::text::parse_pdocument;
use prxview::pxml::PDocument;
use prxview::rewrite::{answer_with_views, plan, View};
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  prxview eval <pdoc-file> <query>\n  prxview worlds <pdoc-file> [limit]\n  \
         prxview plan <query> name=pattern...\n  prxview answer <pdoc-file> <query> name=pattern...\n  \
         prxview cindep <q1> <q2>"
    );
    ExitCode::from(2)
}

fn load_pdoc(path: &str) -> Result<PDocument, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let pdoc = parse_pdocument(text.trim()).map_err(|e| format!("{path}: {e}"))?;
    pdoc.validate().map_err(|e| format!("{path}: {e}"))?;
    Ok(pdoc)
}

fn load_query(s: &str) -> Result<TreePattern, String> {
    parse_pattern(s).map_err(|e| format!("query `{s}`: {e}"))
}

fn parse_views(args: &[String]) -> Result<Vec<View>, String> {
    args.iter()
        .map(|a| {
            let (name, pattern) = a
                .split_once('=')
                .ok_or_else(|| format!("view `{a}` must be name=pattern"))?;
            Ok(View::new(name, load_query(pattern)?))
        })
        .collect()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("eval") if args.len() == 3 => {
            let pdoc = load_pdoc(&args[1])?;
            let q = load_query(&args[2])?;
            for (n, p) in prxview::peval::eval_tp(&pdoc, &q) {
                println!("{n}\t{p:.9}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("worlds") if args.len() >= 2 => {
            let pdoc = load_pdoc(&args[1])?;
            let limit: usize = args
                .get(2)
                .map(|s| s.parse().map_err(|e| format!("bad limit: {e}")))
                .transpose()?
                .unwrap_or(1 << 16);
            let space = pdoc
                .px_space_limited(limit)
                .ok_or("possible-world space exceeds the limit")?;
            for (w, p) in space.worlds() {
                println!("{p:.9}\t{w}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("plan") if args.len() >= 3 => {
            let q = load_query(&args[1])?;
            let views = parse_views(&args[2..])?;
            match plan(&q, &views, 10_000) {
                Some(pl) => {
                    println!("{}", pl.describe(&views));
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    println!("no probabilistic rewriting over these views");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        Some("answer") if args.len() >= 4 => {
            let pdoc = load_pdoc(&args[1])?;
            let q = load_query(&args[2])?;
            let views = parse_views(&args[3..])?;
            match answer_with_views(&pdoc, &q, &views) {
                Some((pl, answers)) => {
                    eprintln!("plan: {}", pl.describe(&views));
                    for (n, p) in answers {
                        println!("{n}\t{p:.9}");
                    }
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    eprintln!("no probabilistic rewriting; use `eval` for direct evaluation");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        Some("cindep") if args.len() == 3 => {
            let q1 = load_query(&args[1])?;
            let q2 = load_query(&args[2])?;
            let indep = prxview::rewrite::c_independent(&q1, &q2);
            println!("{}", if indep { "c-independent" } else { "dependent" });
            Ok(if indep { ExitCode::SUCCESS } else { ExitCode::FAILURE })
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
