//! # prxview — Answering Queries using Views over Probabilistic XML
//!
//! Facade crate for a full reproduction of *Cautis & Kharlamov, VLDB
//! 2012*. See README.md for a tour and DESIGN.md for the architecture
//! (layer diagram: pxml → tpq → peval → rewrite → engine).
//!
//! The primary entry point is the stateful [`engine::Engine`], which owns
//! a catalog of views and answers queries — one at a time or in
//! concurrent batches ([`engine::Engine::answer_batch`]) — from
//! lazily-materialized, memoized view extensions. The extension cache is
//! sharded with single-flight materialization, so parallel queries share
//! work instead of serializing on it; node labels are interned
//! [`pxml::Symbol`]s, so all structural matching compares `u32`s:
//!
//! ```
//! use prxview::engine::Engine;
//! use prxview::pxml::text::parse_pdocument;
//! use prxview::rewrite::View;
//! use prxview::tpq::parse::parse_pattern;
//!
//! let mut engine = Engine::new();
//! let doc = engine
//!     .add_document("demo", parse_pdocument("a[mux(0.4: b[c], 0.6: b)]").unwrap())
//!     .unwrap();
//! engine
//!     .register_view(View::new("bs", parse_pattern("a/b").unwrap()))
//!     .unwrap();
//!
//! let q = parse_pattern("a/b[c]").unwrap();
//! let answer = engine.answer(doc, &q).unwrap();
//! assert_eq!(answer.nodes.len(), 1);
//! assert!((answer.nodes[0].1 - 0.4).abs() < 1e-9);
//! assert!(answer.from_views()); // computed from the extension alone
//! ```
//!
//! The underlying layers remain available (and re-exported) for direct
//! use: [`pxml`] (p-documents), [`tpq`] (tree patterns), [`peval`]
//! (probabilistic evaluation), [`rewrite`] (TPrewrite / TPIrewrite and
//! plan execution), [`engine`] (the stateful facade, its own crate
//! `pxv-engine`), [`store`] (`pxv-store`: persistent binary snapshots —
//! `Engine::snapshot_to` / `Engine::restore_from` give warm restarts
//! with bit-identical answers), [`server`] (`pxv-server`: the `prxd`
//! TCP serving layer — wire protocol, threaded server, blocking client,
//! `prxload`), and [`obs`] (`pxv-obs`: metrics, causal span tracing and
//! the Chrome trace exporter).

#![warn(missing_docs)]

pub use pxv_engine as engine;
pub use pxv_obs as obs;
pub use pxv_peval as peval;
pub use pxv_pxml as pxml;
pub use pxv_rewrite as rewrite;
pub use pxv_server as server;
pub use pxv_store as store;
pub use pxv_tpq as tpq;

use pxv_pxml::{NodeId, PDocument};
use pxv_tpq::TreePattern;

/// `q(P̂)` by direct evaluation over the p-document.
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Engine::answer_direct` (or `peval::eval_tp` when no engine is in play)"
)]
pub fn eval_tp(pdoc: &PDocument, q: &TreePattern) -> Vec<(NodeId, f64)> {
    pxv_peval::eval_tp(pdoc, q)
}

/// Finds a probabilistic rewriting of `q` over `views`.
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Engine::plan` (typed `PlanError`, options) instead"
)]
pub fn plan(
    q: &TreePattern,
    views: &[rewrite::View],
    interleaving_limit: usize,
) -> Option<rewrite::Plan> {
    rewrite::answer::plan_checked(
        q,
        views,
        interleaving_limit,
        rewrite::PlanPreference::PreferTp,
    )
    .ok()
}

/// Plans and answers `q` from freshly materialized view extensions.
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Engine::answer`, which memoizes extensions across queries"
)]
#[allow(deprecated)]
pub fn answer_with_views(
    pdoc: &PDocument,
    q: &TreePattern,
    views: &[rewrite::View],
) -> Option<(rewrite::Plan, Vec<(NodeId, f64)>)> {
    rewrite::answer_with_views(pdoc, q, views)
}

/// Runs TPIrewrite directly (Fig. 7).
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Engine::plan` with `PlanPreference::TpiOnly` instead"
)]
pub fn tpi_rewrite(
    q: &TreePattern,
    views: &[rewrite::View],
    interleaving_limit: usize,
) -> Result<rewrite::TpiRewriting, rewrite::tpi_algorithm::TpiReject> {
    rewrite::tpi_algorithm::tpi_rewrite(q, views, interleaving_limit)
}
