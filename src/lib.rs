//! # prxview — Answering Queries using Views over Probabilistic XML
//!
//! Facade crate re-exporting the whole workspace: a full reproduction of
//! *Cautis & Kharlamov, VLDB 2012*. See the README for a tour and
//! DESIGN.md for the architecture.
//!
//! ```
//! use prxview::pxml::text::parse_pdocument;
//! use prxview::tpq::parse::parse_pattern;
//!
//! let pdoc = parse_pdocument("a[mux(0.4: b[c], 0.6: b)]").unwrap();
//! let q = parse_pattern("a/b[c]").unwrap();
//! let answers = prxview::peval::api::eval_tp(&pdoc, &q);
//! assert_eq!(answers.len(), 1);
//! assert!((answers[0].1 - 0.4).abs() < 1e-9);
//! ```

pub use pxv_peval as peval;
pub use pxv_pxml as pxml;
pub use pxv_rewrite as rewrite;
pub use pxv_tpq as tpq;
