//! The stateful query-answering engine: a [`Catalog`] of registered views
//! with lazily-materialized, memoized extensions, and an [`Engine`] that
//! answers queries touching only those extensions.
//!
//! This is the session-style surface of the library — the paper's
//! scenario (§1, §7) is a warehouse that materializes view extensions
//! *once* and then serves many queries from them. The free functions of
//! `pxv_rewrite::answer` re-materialize every extension per call; the
//! engine pays materialization once per `(document, view)` pair and
//! amortizes it across queries:
//!
//! ```
//! use prxview::engine::{Engine, QueryOptions};
//! use prxview::pxml::text::parse_pdocument;
//! use prxview::rewrite::View;
//! use prxview::tpq::parse::parse_pattern;
//!
//! let mut engine = Engine::new();
//! let doc = engine
//!     .add_document("hr", parse_pdocument("a[mux(0.4: b[c], 0.6: b)]").unwrap())
//!     .unwrap();
//! engine.register_view(View::new("bs", parse_pattern("a/b").unwrap())).unwrap();
//!
//! let q = parse_pattern("a/b[c]").unwrap();
//! let first = engine.answer(doc, &q).unwrap();
//! assert_eq!(first.stats.materializations, 1); // cold: materialize `bs`
//! let second = engine.answer(doc, &q).unwrap();
//! assert_eq!(second.stats.materializations, 0); // warm: cache hit only
//! assert_eq!(second.stats.cache_hits, 1);
//! assert_eq!(first.nodes, second.nodes);
//! ```
//!
//! Execution is *minimal*: a plan only ever touches the extensions of the
//! views it references ([`Plan::referenced_views`]) — a TP∩ plan over a
//! catalog of fifty views materializes two extensions if its parts use
//! two views.

use pxv_pxml::{NodeId, PDocument};
use pxv_rewrite::answer::{execute_tpi, plan_checked};
use pxv_rewrite::fr_tp::answer_tp;
use pxv_rewrite::view::ProbExtension;
use pxv_rewrite::View;
use pxv_tpq::TreePattern;
use std::collections::HashMap;
use std::sync::Arc;

pub use pxv_rewrite::answer::{Plan, PlanError, PlanPreference, DEFAULT_INTERLEAVING_LIMIT};

/// Handle to a document registered with an [`Engine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(usize);

/// Handle to a view registered with a [`Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(usize);

impl ViewId {
    /// Position of the view in [`Catalog::views`] (also the index space
    /// of [`Plan::referenced_views`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Errors reported by the engine (typed replacement for the `Option` /
/// `String` signaling of the pre-engine free functions).
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// A view with this name is already registered.
    DuplicateView(String),
    /// A document with this name is already registered.
    DuplicateDocument(String),
    /// The [`DocId`] does not belong to this engine.
    UnknownDocument(DocId),
    /// The document failed `PDocument::validate`.
    InvalidDocument(String),
    /// No probabilistic rewriting exists and direct fallback is disabled.
    Plan(PlanError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateView(name) => write!(f, "view `{name}` already registered"),
            EngineError::DuplicateDocument(name) => {
                write!(f, "document `{name}` already registered")
            }
            EngineError::UnknownDocument(id) => write!(f, "unknown document id {:?}", id),
            EngineError::InvalidDocument(why) => write!(f, "invalid p-document: {why}"),
            EngineError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> EngineError {
        EngineError::Plan(e)
    }
}

/// What to do when no probabilistic rewriting over the catalog exists.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fallback {
    /// Report [`EngineError::Plan`] — the query is only answered if it can
    /// be answered from view extensions alone. The default: it keeps the
    /// "touch only materialized data" guarantee observable.
    #[default]
    Forbid,
    /// Evaluate directly over the original p-document (the answer's
    /// `plan` is `None` and no extension is touched).
    Direct,
}

/// Per-query knobs, built fluently:
///
/// ```
/// use prxview::engine::{Fallback, PlanPreference, QueryOptions};
/// let opts = QueryOptions::new()
///     .interleaving_limit(50_000)
///     .plan_preference(PlanPreference::PreferTpi)
///     .fallback(Fallback::Direct);
/// assert_eq!(opts.get_interleaving_limit(), 50_000);
/// ```
#[derive(Clone, Debug)]
pub struct QueryOptions {
    interleaving_limit: usize,
    preference: PlanPreference,
    fallback: Fallback,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            interleaving_limit: DEFAULT_INTERLEAVING_LIMIT,
            preference: PlanPreference::default(),
            fallback: Fallback::default(),
        }
    }
}

impl QueryOptions {
    /// Options with all defaults ([`DEFAULT_INTERLEAVING_LIMIT`],
    /// [`PlanPreference::PreferTp`], [`Fallback::Forbid`]).
    pub fn new() -> QueryOptions {
        QueryOptions::default()
    }

    /// Bounds TPIrewrite's interleaving enumeration during TP∩
    /// equivalence tests.
    pub fn interleaving_limit(mut self, limit: usize) -> QueryOptions {
        self.interleaving_limit = limit;
        self
    }

    /// Which plan shapes to consider, in which order.
    pub fn plan_preference(mut self, preference: PlanPreference) -> QueryOptions {
        self.preference = preference;
        self
    }

    /// Behavior when no probabilistic rewriting exists.
    pub fn fallback(mut self, fallback: Fallback) -> QueryOptions {
        self.fallback = fallback;
        self
    }

    /// The configured interleaving limit.
    pub fn get_interleaving_limit(&self) -> usize {
        self.interleaving_limit
    }

    /// The configured plan preference.
    pub fn get_plan_preference(&self) -> PlanPreference {
        self.preference
    }

    /// The configured fallback policy.
    pub fn get_fallback(&self) -> Fallback {
        self.fallback
    }
}

/// Counters describing how one query was executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Distinct extensions the plan read (0 for direct evaluation).
    pub extensions_touched: usize,
    /// How many of those were served from the catalog's cache.
    pub cache_hits: usize,
    /// How many had to be materialized during this query
    /// (`extensions_touched = cache_hits + materializations`).
    pub materializations: usize,
    /// Candidate answer nodes considered before probability filtering.
    pub candidates: usize,
}

/// The result of [`Engine::answer`]: answers, the route taken, and
/// per-query execution stats.
#[derive(Clone, Debug)]
pub struct Answer {
    /// `(node, probability)` pairs with positive probability, sorted by
    /// node id.
    pub nodes: Vec<(NodeId, f64)>,
    /// The chosen rewriting; `None` when the query was answered by direct
    /// evaluation (fallback or [`Engine::answer_direct`]).
    pub plan: Option<Plan>,
    /// Human-readable description of the route (plan shape and views).
    pub description: String,
    /// Execution counters.
    pub stats: QueryStats,
}

impl Answer {
    /// Whether this answer came from view extensions (a plan) rather than
    /// direct evaluation.
    pub fn from_views(&self) -> bool {
        self.plan.is_some()
    }
}

/// Lifetime counters for an [`Engine`] (monotone; never reset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries answered (including direct fallbacks).
    pub queries: u64,
    /// Queries answered through a single-view TP plan.
    pub plans_tp: u64,
    /// Queries answered through a TP∩ plan.
    pub plans_tpi: u64,
    /// Queries answered by direct evaluation.
    pub direct: u64,
    /// Extensions materialized since the engine was created.
    pub materializations: u64,
    /// Extension reads served from cache.
    pub cache_hits: u64,
}

/// A named set of views plus the memoized extensions materialized from
/// them, keyed per document.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    views: Vec<View>,
    by_name: HashMap<String, usize>,
    /// `(document, view) →` materialized extension.
    cache: HashMap<(usize, usize), Arc<ProbExtension>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a view; names must be unique within the catalog.
    pub fn register(&mut self, view: View) -> Result<ViewId, EngineError> {
        if self.by_name.contains_key(&view.name) {
            return Err(EngineError::DuplicateView(view.name.clone()));
        }
        let id = ViewId(self.views.len());
        self.by_name.insert(view.name.clone(), id.0);
        self.views.push(view);
        Ok(id)
    }

    /// The registered views, in registration order.
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the catalog has no views.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The view behind a handle.
    pub fn view(&self, id: ViewId) -> &View {
        &self.views[id.0]
    }

    /// Looks a view up by name.
    pub fn find(&self, name: &str) -> Option<ViewId> {
        self.by_name.get(name).copied().map(ViewId)
    }

    /// Number of extensions currently cached for `doc`.
    pub fn cached_extensions(&self, doc: DocId) -> usize {
        self.cache.keys().filter(|&&(d, _)| d == doc.0).count()
    }

    /// Drops every cached extension of `doc` (call after replacing the
    /// document's content).
    pub fn invalidate(&mut self, doc: DocId) {
        self.cache.retain(|&(d, _), _| d != doc.0);
    }

    /// The memoized extension of view `view_idx` over `pdoc`; materializes
    /// on first use. Returns the extension and whether it was a cache hit.
    fn extension(
        &mut self,
        doc: usize,
        pdoc: &PDocument,
        view_idx: usize,
    ) -> (Arc<ProbExtension>, bool) {
        if let Some(ext) = self.cache.get(&(doc, view_idx)) {
            return (Arc::clone(ext), true);
        }
        let ext = Arc::new(ProbExtension::materialize(pdoc, &self.views[view_idx]));
        self.cache.insert((doc, view_idx), Arc::clone(&ext));
        (ext, false)
    }
}

/// The stateful query-answering engine (see the module docs for a tour).
#[derive(Clone, Debug, Default)]
pub struct Engine {
    documents: Vec<PDocument>,
    doc_names: HashMap<String, usize>,
    catalog: Catalog,
    options: QueryOptions,
    stats: EngineStats,
}

impl Engine {
    /// An engine with default [`QueryOptions`].
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine whose [`Engine::answer`] uses `options`.
    pub fn with_options(options: QueryOptions) -> Engine {
        Engine {
            options,
            ..Engine::default()
        }
    }

    /// The engine-level default options.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Registers (and validates) a document; names must be unique.
    pub fn add_document(
        &mut self,
        name: impl Into<String>,
        pdoc: PDocument,
    ) -> Result<DocId, EngineError> {
        let name = name.into();
        if self.doc_names.contains_key(&name) {
            return Err(EngineError::DuplicateDocument(name));
        }
        pdoc.validate()
            .map_err(|e| EngineError::InvalidDocument(e.to_string()))?;
        let id = DocId(self.documents.len());
        self.doc_names.insert(name, id.0);
        self.documents.push(pdoc);
        Ok(id)
    }

    /// The document behind a handle.
    pub fn document(&self, id: DocId) -> Result<&PDocument, EngineError> {
        self.documents
            .get(id.0)
            .ok_or(EngineError::UnknownDocument(id))
    }

    /// Looks a document up by name.
    pub fn find_document(&self, name: &str) -> Option<DocId> {
        self.doc_names.get(name).copied().map(DocId)
    }

    /// Replaces a document's content and invalidates its cached
    /// extensions.
    pub fn replace_document(&mut self, id: DocId, pdoc: PDocument) -> Result<(), EngineError> {
        pdoc.validate()
            .map_err(|e| EngineError::InvalidDocument(e.to_string()))?;
        let slot = self
            .documents
            .get_mut(id.0)
            .ok_or(EngineError::UnknownDocument(id))?;
        *slot = pdoc;
        self.catalog.invalidate(id);
        Ok(())
    }

    /// Registers a view in the engine's catalog.
    pub fn register_view(&mut self, view: View) -> Result<ViewId, EngineError> {
        self.catalog.register(view)
    }

    /// Registers several views, stopping at the first error.
    pub fn register_views(
        &mut self,
        views: impl IntoIterator<Item = View>,
    ) -> Result<Vec<ViewId>, EngineError> {
        views.into_iter().map(|v| self.register_view(v)).collect()
    }

    /// The catalog (views + extension cache).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Plans `q` over the catalog with the engine's default options,
    /// without executing anything.
    pub fn plan(&self, q: &TreePattern) -> Result<Plan, EngineError> {
        self.plan_with(q, &self.options)
    }

    /// Plans `q` with explicit options.
    pub fn plan_with(&self, q: &TreePattern, options: &QueryOptions) -> Result<Plan, EngineError> {
        Ok(plan_checked(
            q,
            &self.catalog.views,
            options.interleaving_limit,
            options.preference,
        )?)
    }

    /// Eagerly materializes every registered view over `doc`; returns the
    /// number of extensions that were newly materialized.
    pub fn warm(&mut self, doc: DocId) -> Result<usize, EngineError> {
        let pdoc = self
            .documents
            .get(doc.0)
            .ok_or(EngineError::UnknownDocument(doc))?;
        let mut new = 0;
        for i in 0..self.catalog.views.len() {
            let (_, hit) = self.catalog.extension(doc.0, pdoc, i);
            if !hit {
                new += 1;
                self.stats.materializations += 1;
            }
        }
        Ok(new)
    }

    /// Answers `q` over `doc` with the engine's default options.
    pub fn answer(&mut self, doc: DocId, q: &TreePattern) -> Result<Answer, EngineError> {
        let options = self.options.clone();
        self.answer_with(doc, q, &options)
    }

    /// Answers `q` over `doc`: plans over the catalog, materializes (or
    /// reuses) exactly the extensions the plan references, and evaluates
    /// touching only those extensions.
    pub fn answer_with(
        &mut self,
        doc: DocId,
        q: &TreePattern,
        options: &QueryOptions,
    ) -> Result<Answer, EngineError> {
        let pdoc = self
            .documents
            .get(doc.0)
            .ok_or(EngineError::UnknownDocument(doc))?;
        let plan = match plan_checked(
            q,
            &self.catalog.views,
            options.interleaving_limit,
            options.preference,
        ) {
            Ok(plan) => plan,
            Err(e) => {
                return match options.fallback {
                    Fallback::Forbid => Err(EngineError::Plan(e)),
                    Fallback::Direct => Ok(self.direct_answer(
                        doc,
                        q,
                        format!("direct evaluation (fallback: {e})"),
                    )),
                }
            }
        };
        // Fetch exactly the extensions the plan references.
        let referenced = plan.referenced_views();
        let mut hits = 0;
        let mut mats = 0;
        let slots: HashMap<usize, Arc<ProbExtension>> = referenced
            .iter()
            .map(|&i| {
                let (ext, hit) = self.catalog.extension(doc.0, pdoc, i);
                if hit {
                    hits += 1;
                } else {
                    mats += 1;
                }
                (i, ext)
            })
            .collect();
        let (nodes, candidates) = match &plan {
            Plan::Tp(rw) => {
                let ext = &slots[&rw.view_index];
                (answer_tp(rw, ext), ext.results.len())
            }
            Plan::Tpi(rw) => {
                let exec = execute_tpi(rw, &|i| &*slots[&i]);
                (exec.answers, exec.candidates)
            }
        };
        self.stats.queries += 1;
        match &plan {
            Plan::Tp(_) => self.stats.plans_tp += 1,
            Plan::Tpi(_) => self.stats.plans_tpi += 1,
        }
        self.stats.materializations += mats as u64;
        self.stats.cache_hits += hits as u64;
        Ok(Answer {
            nodes,
            description: plan.describe(&self.catalog.views),
            plan: Some(plan),
            stats: QueryStats {
                extensions_touched: referenced.len(),
                cache_hits: hits,
                materializations: mats,
                candidates,
            },
        })
    }

    /// Evaluates `q` directly over the original p-document (the baseline
    /// the rewriting avoids; touches no extension).
    pub fn answer_direct(&mut self, doc: DocId, q: &TreePattern) -> Result<Answer, EngineError> {
        self.documents
            .get(doc.0)
            .ok_or(EngineError::UnknownDocument(doc))?;
        Ok(self.direct_answer(doc, q, "direct evaluation".to_string()))
    }

    /// Shared direct-evaluation path (plain `answer_direct` and the
    /// `Fallback::Direct` branch of `answer_with`). The caller must have
    /// checked that `doc` exists.
    fn direct_answer(&mut self, doc: DocId, q: &TreePattern, description: String) -> Answer {
        let nodes = pxv_peval::eval_tp(&self.documents[doc.0], q);
        self.stats.queries += 1;
        self.stats.direct += 1;
        Answer {
            stats: QueryStats {
                candidates: nodes.len(),
                ..QueryStats::default()
            },
            nodes,
            plan: None,
            description,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxv_pxml::examples_paper::fig2_pper;
    use pxv_pxml::text::parse_pdocument;
    use pxv_tpq::parse::parse_pattern;

    fn p(s: &str) -> TreePattern {
        parse_pattern(s).unwrap()
    }

    fn bonus_engine() -> (Engine, DocId) {
        let mut e = Engine::new();
        let doc = e.add_document("pper", fig2_pper()).unwrap();
        e.register_views([
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("bonuses", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
        (e, doc)
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut e, _) = bonus_engine();
        assert_eq!(
            e.register_view(View::new("rick", p("a/b"))).err(),
            Some(EngineError::DuplicateView("rick".into()))
        );
        assert_eq!(
            e.add_document("pper", fig2_pper()).err(),
            Some(EngineError::DuplicateDocument("pper".into()))
        );
    }

    #[test]
    fn unknown_and_invalid_documents_rejected() {
        let (mut e, _) = bonus_engine();
        let bogus = DocId(99);
        assert!(matches!(
            e.answer(bogus, &p("a")).err(),
            Some(EngineError::UnknownDocument(_))
        ));
        // A mux with mass > 1 fails validation.
        let mut bad = PDocument::new(pxv_pxml::Label::new("a"));
        let m = bad.add_dist(bad.root(), pxv_pxml::PKind::Mux, 1.0);
        bad.add_ordinary(m, pxv_pxml::Label::new("b"), 0.7);
        bad.add_ordinary(m, pxv_pxml::Label::new("c"), 0.7);
        assert!(matches!(
            e.add_document("bad", bad).err(),
            Some(EngineError::InvalidDocument(_))
        ));
    }

    #[test]
    fn warm_then_all_hits() {
        let (mut e, doc) = bonus_engine();
        assert_eq!(e.warm(doc).unwrap(), 2);
        assert_eq!(e.warm(doc).unwrap(), 0, "second warm is a no-op");
        let a = e
            .answer(doc, &p("IT-personnel//person/bonus[laptop]"))
            .unwrap();
        assert_eq!(a.stats.materializations, 0);
        assert_eq!(a.stats.cache_hits, a.stats.extensions_touched);
        assert_eq!(e.catalog().cached_extensions(doc), 2);
    }

    #[test]
    fn fallback_policy() {
        // Example 11: no probabilistic rewriting exists.
        let mut e = Engine::new();
        let doc = e
            .add_document("d", parse_pdocument("a#0[b#1[mux#2(0.5: c#3)]]").unwrap())
            .unwrap();
        e.register_view(View::new("v", p("a[.//c]/b"))).unwrap();
        let q = p("a/b[c]");
        let err = e.answer(doc, &q).expect_err("forbidden by default");
        assert!(matches!(err, EngineError::Plan(_)), "{err}");
        let opts = QueryOptions::new().fallback(Fallback::Direct);
        let a = e.answer_with(doc, &q, &opts).unwrap();
        assert!(!a.from_views());
        assert_eq!(a.stats.extensions_touched, 0);
        assert_eq!(a.nodes, vec![(NodeId(1), 0.5)]);
        assert_eq!(e.stats().direct, 1);
    }

    #[test]
    fn replace_document_invalidates_cache() {
        let mut e = Engine::new();
        let doc = e
            .add_document("d", parse_pdocument("a[b[c]]").unwrap())
            .unwrap();
        e.register_view(View::new("bs", p("a/b"))).unwrap();
        let q = p("a/b[c]");
        let a1 = e.answer(doc, &q).unwrap();
        assert_eq!(a1.nodes.len(), 1);
        e.replace_document(doc, parse_pdocument("a[b, b[c]]").unwrap())
            .unwrap();
        assert_eq!(e.catalog().cached_extensions(doc), 0);
        let a2 = e.answer(doc, &q).unwrap();
        assert_eq!(a2.stats.materializations, 1, "cache was invalidated");
        assert_eq!(a2.nodes.len(), 1);
    }

    #[test]
    fn per_document_cache_keys() {
        let mut e = Engine::new();
        let d1 = e
            .add_document("d1", parse_pdocument("a[b[c]]").unwrap())
            .unwrap();
        let d2 = e
            .add_document("d2", parse_pdocument("a[b, b[c]]").unwrap())
            .unwrap();
        e.register_view(View::new("bs", p("a/b"))).unwrap();
        let q = p("a/b");
        let a1 = e.answer(d1, &q).unwrap();
        assert_eq!(a1.stats.materializations, 1);
        // Different document: its own extension, not d1's.
        let a2 = e.answer(d2, &q).unwrap();
        assert_eq!(a2.stats.materializations, 1);
        assert_eq!(a2.nodes.len(), 2);
        assert_eq!(a1.nodes.len(), 1);
    }
}
