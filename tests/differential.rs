//! Differential tests: every engine execution path — single-view TP
//! plans, TP∩ plans, direct fallback, and the concurrent batch path — is
//! checked against brute-force possible-worlds enumeration
//! (`pxml::worlds`) on randomized small documents, views and queries.
//! Parallel caching bugs are exactly the kind that slip past
//! example-based tests, so the batch path is additionally required to be
//! *bit-identical* to sequential answering at every thread count.

use prxview::engine::{DocId, Engine, Fallback, PlanPreference, QueryOptions};
use prxview::pxml::generators::{random_pdocument, RandomPDocConfig};
use prxview::pxml::{NodeId, PDocument};
use prxview::rewrite::View;
use prxview::tpq::generators::{random_pattern, RandomPatternConfig};
use prxview::tpq::TreePattern;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `q(P̂)` by brute force: enumerate `⟦P̂⟧` and, for every ordinary node,
/// sum the probability of the worlds where the query selects it. Ground
/// truth for everything the engine computes; exponential, so documents
/// stay tiny. Returns `None` when the world space exceeds the limit.
fn brute_force(pdoc: &PDocument, q: &TreePattern) -> Option<Vec<(NodeId, f64)>> {
    let space = pdoc.px_space_limited(1 << 14)?;
    let mut out: Vec<(NodeId, f64)> = pdoc
        .ordinary_ids()
        .map(|n| {
            let p =
                space.probability_where(|w| w.contains(n) && prxview::tpq::embed::selects(q, w, n));
            (n, p)
        })
        .filter(|&(_, p)| p > 1e-12)
        .collect();
    out.sort_by_key(|&(n, _)| n);
    Some(out)
}

fn assert_close(got: &[(NodeId, f64)], want: &[(NodeId, f64)], ctx: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{ctx}: answer sets differ\n got {got:?}\nwant {want:?}"
    );
    for ((n1, p1), (n2, p2)) in got.iter().zip(want) {
        assert_eq!(n1, n2, "{ctx}");
        assert!((p1 - p2).abs() < 1e-9, "{ctx}: node {n1}: {p1} vs {p2}");
    }
}

fn small_doc_cfg() -> RandomPDocConfig {
    RandomPDocConfig {
        max_depth: 4,
        max_children: 3,
        dist_density: 0.5,
        target_size: 12,
        ..RandomPDocConfig::default()
    }
}

/// TP path (and direct fallback) vs possible-worlds enumeration: the
/// catalog holds prefix views of the query, so most trials answer through
/// a TP plan; whatever route is taken must match the enumeration.
#[test]
fn tp_and_fallback_answers_match_possible_worlds() {
    let mut rng = StdRng::seed_from_u64(20260726);
    let doc_cfg = small_doc_cfg();
    let pat_cfg = RandomPatternConfig {
        mb_len: 3,
        preds_per_node: 0.5,
        pred_depth: 1,
        ..RandomPatternConfig::default()
    };
    let mut checked = 0usize;
    let mut planned = 0usize;
    for trial in 0..80 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        let q = random_pattern(&pat_cfg, &mut rng);
        let Some(want) = brute_force(&pdoc, &q) else {
            continue;
        };
        let mut engine = Engine::new();
        let doc = engine.add_document("rand", pdoc).unwrap();
        let views: Vec<View> = (1..=q.mb_len())
            .map(|k| View::new(format!("prefix{k}"), q.prefix(k)))
            .collect();
        engine.register_views(views).unwrap();
        let opts = QueryOptions::new().fallback(Fallback::Direct);
        let answer = engine.answer_with(doc, &q, &opts).expect("fallback on");
        if answer.from_views() {
            planned += 1;
        }
        assert_close(&answer.nodes, &want, &format!("trial {trial}: {q}"));
        checked += 1;
    }
    assert!(checked >= 40, "too few enumerable trials: {checked}");
    assert!(planned >= 20, "too few planned trials: {planned}/{checked}");
}

/// TP∩ path vs possible-worlds enumeration: per-main-branch-node
/// predicate restrictions of the query form the catalog, which TPIrewrite
/// can often recombine into an equivalent intersection.
#[test]
fn tpi_answers_match_possible_worlds() {
    let mut rng = StdRng::seed_from_u64(77);
    let doc_cfg = small_doc_cfg();
    let pat_cfg = RandomPatternConfig {
        mb_len: 2,
        preds_per_node: 1.2,
        pred_depth: 1,
        ..RandomPatternConfig::default()
    };
    let mut planned_tpi = 0usize;
    for trial in 0..80 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        let q = random_pattern(&pat_cfg, &mut rng);
        let Some(want) = brute_force(&pdoc, &q) else {
            continue;
        };
        let mut engine = Engine::new();
        let doc = engine.add_document("rand", pdoc).unwrap();
        // One view per main-branch node keeping only that node's
        // predicates, plus the bare main branch.
        let mut views: Vec<View> = q
            .main_branch()
            .iter()
            .enumerate()
            .filter(|&(_, &n)| q.has_predicates(n))
            .map(|(i, &n)| View::new(format!("v{i}"), q.filter_predicates(|m, _| m == n)))
            .collect();
        views.push(View::new("mb", q.main_branch_only()));
        engine.register_views(views).unwrap();
        let opts = QueryOptions::new()
            .plan_preference(PlanPreference::TpiOnly)
            .fallback(Fallback::Direct);
        let answer = engine.answer_with(doc, &q, &opts).expect("fallback on");
        if answer.from_views() {
            planned_tpi += 1;
        }
        assert_close(&answer.nodes, &want, &format!("trial {trial}: {q}"));
    }
    assert!(
        planned_tpi >= 10,
        "too few TP∩-planned trials: {planned_tpi}"
    );
}

/// The batch path vs possible-worlds enumeration *and* sequential
/// answering: one shared engine, several documents, a mixed query load.
/// Batch answers must be bit-identical (`==` on the f64s) to sequential
/// ones at every thread count — same plans, same extensions, same DP —
/// and correct against the enumeration whenever it is feasible.
#[test]
fn batch_answers_match_sequential_and_possible_worlds() {
    let mut rng = StdRng::seed_from_u64(4242);
    let doc_cfg = small_doc_cfg();
    let pat_cfg = RandomPatternConfig {
        mb_len: 2,
        preds_per_node: 0.6,
        pred_depth: 1,
        ..RandomPatternConfig::default()
    };
    let mut engine = Engine::new();
    let mut docs: Vec<DocId> = Vec::new();
    for i in 0..4 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        docs.push(engine.add_document(format!("d{i}"), pdoc).unwrap());
    }
    // A catalog of random views shared by every document.
    let views: Vec<View> = (0..6)
        .map(|i| View::new(format!("v{i}"), random_pattern(&pat_cfg, &mut rng)))
        .collect();
    engine.register_views(views).unwrap();
    let batch: Vec<(DocId, TreePattern)> = (0..48)
        .map(|i| (docs[i % docs.len()], random_pattern(&pat_cfg, &mut rng)))
        .collect();
    let opts = QueryOptions::new().fallback(Fallback::Direct);

    // Sequential ground truth on a fresh clone (cold catalog, like each
    // batch run below starts from).
    let (sequential, seq_mats) = {
        let fresh = engine.clone();
        let answers: Vec<_> = batch
            .iter()
            .map(|(d, q)| fresh.answer_with(*d, q, &opts).expect("fallback on"))
            .collect();
        (answers, fresh.stats().materializations)
    };
    // Spot-check the sequential answers against the enumeration.
    let mut enumerated = 0usize;
    for ((doc, q), answer) in batch.iter().zip(&sequential) {
        let pdoc = engine.document(*doc).unwrap();
        if let Some(want) = brute_force(&pdoc, q) {
            assert_close(&answer.nodes, &want, &format!("{q}"));
            enumerated += 1;
        }
    }
    assert!(enumerated >= 24, "too few enumerable queries: {enumerated}");

    for threads in [1usize, 2, 4, 8] {
        let fresh = engine.clone();
        let results = fresh.answer_batch_with(&batch, &opts, threads);
        for (i, (got, want)) in results.iter().zip(&sequential).enumerate() {
            let got = got.as_ref().expect("batch answer");
            assert_eq!(
                got.nodes, want.nodes,
                "threads={threads}, query {i}: batch must be bit-identical to sequential"
            );
            assert_eq!(got.description, want.description, "threads={threads}");
        }
        // Single-flight: concurrency must not duplicate any
        // materialization a sequential run performs exactly once.
        assert_eq!(
            fresh.stats().materializations,
            seq_mats,
            "threads={threads}: batch materializes exactly what sequential does"
        );
    }
}
