//! Columnar-snapshot differential test (format v3): an engine restored
//! *lazily* from a v3 file must answer a 48-query randomized workload
//! bit-identically to the live engine that produced the snapshot AND to
//! an engine restored eagerly from the v2 row encoding of the same
//! snapshot — with zero materializations (every extension is served from
//! the snapshot) and exactly one section fault per distinct
//! `(document, view)` pair the workload's plans touch. A companion test
//! pins the fault-isolation contract: a corrupt section surfaces as a
//! typed engine error at query time while every other section serves.

use prxview::engine::{DocId, Engine, EngineError, Fallback, QueryOptions};
use prxview::pxml::generators::{personnel, random_pdocument, RandomPDocConfig};
use prxview::rewrite::View;
use prxview::store::{
    decode_snapshot, decode_snapshot_lazy, encode_snapshot, encode_snapshot_v2, LazyBody,
};
use prxview::tpq::generators::{random_pattern, RandomPatternConfig};
use prxview::tpq::TreePattern;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

const WORKLOAD_QUERIES: usize = 48;

/// A warmed engine mixing the paper's personnel scenario with random
/// documents, prefix-view catalogs (guaranteed rewritings) and one view
/// no query can ever reference — so the fault count has something to
/// *not* touch.
fn build_workload() -> (Engine, Vec<(DocId, TreePattern)>) {
    let mut rng = StdRng::seed_from_u64(20260808);
    let doc_cfg = RandomPDocConfig {
        max_depth: 4,
        max_children: 3,
        dist_density: 0.5,
        target_size: 12,
        ..RandomPDocConfig::default()
    };
    let pat_cfg = RandomPatternConfig {
        mb_len: 2,
        preds_per_node: 0.6,
        pred_depth: 1,
        ..RandomPatternConfig::default()
    };
    let p = |s: &str| prxview::tpq::parse::parse_pattern(s).unwrap();
    let mut engine = Engine::new();
    let hr = engine.add_document("hr", personnel(30, 3, 9).0).unwrap();
    let mut docs = vec![hr];
    for i in 0..2 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        docs.push(engine.add_document(format!("d{i}"), pdoc).unwrap());
    }
    engine
        .register_views([
            View::new("v1BON", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("v2BON", p("IT-personnel//person/bonus")),
            // Unreferencable: no workload query matches this label, so
            // its sections must never fault in.
            View::new("zzzNEVER", p("zzz-root/never")),
        ])
        .unwrap();
    let mut workload: Vec<(DocId, TreePattern)> = Vec::new();
    for (i, q) in (0..4).map(|i| (i, random_pattern(&pat_cfg, &mut rng))) {
        for k in 1..=q.mb_len() {
            engine
                .register_view(View::new(format!("q{i}p{k}"), q.prefix(k)))
                .unwrap();
        }
        for &doc in &docs {
            workload.push((doc, q.clone()));
        }
    }
    for q in [
        "IT-personnel//person/bonus[laptop]",
        "IT-personnel//person/bonus[pda]",
        "IT-personnel//person/bonus",
        "IT-personnel//person[name/Rick]/bonus[laptop]",
    ] {
        workload.push((hr, p(q)));
    }
    while workload.len() < WORKLOAD_QUERIES {
        workload.push((
            docs[workload.len() % docs.len()],
            random_pattern(&pat_cfg, &mut rng),
        ));
    }
    workload.truncate(WORKLOAD_QUERIES);
    for &doc in &docs {
        engine.warm(doc).unwrap();
    }
    (engine, workload)
}

#[test]
fn lazy_v3_restore_matches_live_and_v2_restores_bit_identically() {
    let (engine, workload) = build_workload();
    assert_eq!(workload.len(), WORKLOAD_QUERIES);
    let opts = QueryOptions::new().fallback(Fallback::Direct);

    let expected: Vec<_> = workload
        .iter()
        .map(|(d, q)| engine.answer_with(*d, q, &opts).expect("fallback on"))
        .collect();
    assert!(
        expected.iter().any(|a| !a.nodes.is_empty()),
        "workload must produce nonempty answers"
    );
    assert!(
        expected.iter().any(|a| a.from_views()),
        "workload must exercise view plans"
    );

    let snap = engine.snapshot();
    let v2_bytes = encode_snapshot_v2(&snap);
    let v3_bytes = encode_snapshot(&snap);
    let v2_engine = Engine::from_snapshot(decode_snapshot(&v2_bytes).expect("v2 decodes"))
        .expect("v2 restores");
    let lazy = decode_snapshot_lazy(v3_bytes).expect("v3 decodes lazily");
    assert!(
        lazy.sections
            .iter()
            .all(|s| matches!(s.body, LazyBody::Pending(_))),
        "every v3 extension section restores pending"
    );
    let total_sections = lazy.sections.len();
    let v3_engine = Engine::from_snapshot_lazy(lazy).expect("v3 restores");

    // The distinct (doc, view) pairs the workload's plans reference —
    // computed on the lazy engine itself so the count and the faults
    // come from the same plans.
    let mut touched: HashSet<(usize, usize)> = HashSet::new();
    for (i, ((doc, q), want)) in workload.iter().zip(&expected).enumerate() {
        let got_v2 = v2_engine.answer_with(*doc, q, &opts).expect("fallback on");
        let got_v3 = v3_engine.answer_with(*doc, q, &opts).expect("fallback on");
        assert_eq!(
            got_v3.nodes, want.nodes,
            "query {i} ({q}): lazy v3 restore must answer bit-identically to live"
        );
        assert_eq!(
            got_v2.nodes, want.nodes,
            "query {i} ({q}): eager v2 restore must answer bit-identically to live"
        );
        assert_eq!(
            got_v3.description, want.description,
            "query {i}: same route"
        );
        assert_eq!(
            got_v2.description, want.description,
            "query {i}: same route"
        );
        if let Some(plan) = &got_v3.plan {
            for view in plan.referenced_views() {
                touched.insert((doc.index(), view));
            }
        }
    }

    let v3_stats = v3_engine.stats();
    let v2_stats = v2_engine.stats();
    assert_eq!(
        v3_stats.materializations, 0,
        "the lazy restore must serve the whole workload from the snapshot"
    );
    assert_eq!(v2_stats.materializations, 0, "v2's cache is warm too");
    assert!(!touched.is_empty(), "the workload references views");
    assert!(
        touched.len() < total_sections,
        "the unreferencable view keeps the fault count strict \
         ({} touched of {total_sections} sections)",
        touched.len()
    );
    assert_eq!(
        v3_stats.sections_faulted,
        touched.len() as u64,
        "sections faulted must equal the distinct (doc, view) pairs touched"
    );
    assert!(
        v3_stats.lazy_decode_ns > 0,
        "fault decode time is accounted"
    );
    assert_eq!(
        v2_stats.sections_faulted, 0,
        "an eager restore never faults"
    );
}

#[test]
fn corrupt_section_faults_typed_at_query_time_while_others_serve() {
    let p = |s: &str| prxview::tpq::parse::parse_pattern(s).unwrap();
    let mut engine = Engine::new();
    let doc = engine.add_document("hr", personnel(20, 3, 9).0).unwrap();
    engine
        .register_views([
            View::new("v1BON", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("v2BON", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
    engine.warm(doc).unwrap();
    let q_rick = p("IT-personnel//person[name/Rick]/bonus[laptop]");
    let q_all = p("IT-personnel//person/bonus[laptop]");
    let opts = QueryOptions::new().fallback(Fallback::Forbid);
    let want_rick = engine.answer_with(doc, &q_rick, &opts).unwrap();
    let want_all = engine.answer_with(doc, &q_all, &opts).unwrap();
    let plan_rick = engine.plan(&q_rick).unwrap();
    let rick_views: Vec<usize> = plan_rick.referenced_views().into_iter().collect();
    assert_eq!(rick_views, vec![0], "qRick must plan over v1BON alone");

    let mut bytes = encode_snapshot(&engine.snapshot());
    // Locate v1BON's still-encoded body via a clean lazy boot and smash
    // a byte in the middle of it.
    let clean = decode_snapshot_lazy(bytes.clone()).expect("clean boot");
    let body = clean
        .sections
        .iter()
        .find_map(|s| match (&s.body, s.view) {
            (LazyBody::Pending(r), 0) => Some(r.offset()..r.offset() + r.len()),
            _ => None,
        })
        .expect("v1BON section present");
    bytes[body.start + body.len() / 2] ^= 0xFF;

    let restored = Engine::from_snapshot_lazy(decode_snapshot_lazy(bytes).expect("boot survives"))
        .expect("restore survives — the flip sits in an undecoded body");

    // The undamaged section keeps serving, bit-identically.
    let got_all = restored
        .answer_with(doc, &q_all, &opts)
        .expect("v2BON serves");
    assert_eq!(got_all.nodes, want_all.nodes);

    // The damaged section is a typed engine error at query time — on
    // every probe, not just the first.
    for attempt in 0..2 {
        match restored.answer_with(doc, &q_rick, &opts) {
            Err(EngineError::Section { doc: d, view, .. }) => {
                assert_eq!(
                    (d, view),
                    (doc.index(), 0),
                    "error names the section (try {attempt})"
                );
            }
            other => panic!("corrupt section must fault typed, got {other:?}"),
        }
    }

    // The failure is contained: the other section still answers after
    // the faults, and nothing was silently materialized.
    let again = restored
        .answer_with(doc, &q_all, &opts)
        .expect("still serving");
    assert_eq!(again.nodes, want_all.nodes);
    assert_eq!(restored.stats().materializations, 0);
    drop(want_rick);
}
