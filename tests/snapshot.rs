//! Snapshot differential test: a warmed engine, snapshotted to disk and
//! restored, must answer the `tests/differential.rs`-style randomized
//! workload **bit-identically** to the engine that produced the snapshot
//! — same nodes, same `f64` bits, same plan routes — while performing
//! **zero** materializations (the restored cache is the warm cache).

use prxview::engine::{DocId, Engine, Fallback, QueryOptions};
use prxview::pxml::generators::{random_pdocument, RandomPDocConfig};
use prxview::rewrite::View;
use prxview::tpq::generators::{random_pattern, RandomPatternConfig};
use prxview::tpq::TreePattern;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An engine mixing the paper's personnel scenario (guaranteed nonempty,
/// planned answers with nontrivial probabilities) with random documents
/// and queries whose prefixes form the catalog (guaranteed rewritings,
/// like `tests/differential.rs`), plus a diverse query workload.
fn build_workload() -> (Engine, Vec<(DocId, TreePattern)>) {
    let mut rng = StdRng::seed_from_u64(20260726);
    let doc_cfg = RandomPDocConfig {
        max_depth: 4,
        max_children: 3,
        dist_density: 0.5,
        target_size: 12,
        ..RandomPDocConfig::default()
    };
    let pat_cfg = RandomPatternConfig {
        mb_len: 2,
        preds_per_node: 0.6,
        pred_depth: 1,
        ..RandomPatternConfig::default()
    };
    let p = |s: &str| prxview::tpq::parse::parse_pattern(s).unwrap();
    let mut engine = Engine::new();
    let hr = engine
        .add_document("hr", prxview::pxml::generators::personnel(30, 3, 9).0)
        .unwrap();
    let mut docs = vec![hr];
    for i in 0..3 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        docs.push(engine.add_document(format!("d{i}"), pdoc).unwrap());
    }
    engine
        .register_views([
            View::new("v1BON", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("v2BON", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
    // Random queries whose prefixes become views: TPrewrite accepts the
    // identity/prefix rewritings, so these are answered from extensions.
    let mut workload: Vec<(DocId, TreePattern)> = Vec::new();
    for (i, q) in (0..6).map(|i| (i, random_pattern(&pat_cfg, &mut rng))) {
        for k in 1..=q.mb_len() {
            engine
                .register_view(View::new(format!("q{i}p{k}"), q.prefix(k)))
                .unwrap();
        }
        for &doc in &docs {
            workload.push((doc, q.clone()));
        }
    }
    for q in [
        "IT-personnel//person/bonus[laptop]",
        "IT-personnel//person/bonus[pda]",
        "IT-personnel//person/bonus",
        "IT-personnel//person[name/Rick]/bonus[laptop]",
    ] {
        workload.push((hr, p(q)));
    }
    for i in 0..20 {
        workload.push((docs[i % docs.len()], random_pattern(&pat_cfg, &mut rng)));
    }
    (engine, workload)
}

#[test]
fn restored_engine_answers_workload_bit_identically_with_zero_materializations() {
    let (engine, workload) = build_workload();
    let opts = QueryOptions::new().fallback(Fallback::Direct);

    // Warm everything: every (document, view) extension is materialized,
    // so the snapshot carries the complete warm cache.
    let mut total_ext = 0;
    for name in ["hr", "d0", "d1", "d2"] {
        let doc = engine.find_document(name).unwrap();
        total_ext += engine.warm(doc).unwrap();
    }
    assert_eq!(
        total_ext,
        engine.document_count() * engine.catalog().len(),
        "every (document, view) extension materialized"
    );

    let expected: Vec<_> = workload
        .iter()
        .map(|(d, q)| engine.answer_with(*d, q, &opts).expect("fallback on"))
        .collect();
    assert!(
        expected.iter().any(|a| !a.nodes.is_empty()),
        "workload must produce nonempty answers"
    );
    assert!(
        expected.iter().any(|a| a.from_views()),
        "workload must exercise view plans"
    );

    // Save → restore through the real on-disk format.
    let path =
        std::env::temp_dir().join(format!("pxv-snap-differential-{}.pxv", std::process::id()));
    let bytes = engine.snapshot_to(&path).unwrap();
    assert!(bytes > 0);
    let restored = Engine::restore_from(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(restored.catalog_epoch(), engine.catalog_epoch());
    assert_eq!(restored.document_count(), engine.document_count());
    for (i, ((doc, q), want)) in workload.iter().zip(&expected).enumerate() {
        // DocId values survive because documents restore in id order.
        let got = restored.answer_with(*doc, q, &opts).expect("fallback on");
        assert_eq!(
            got.nodes, want.nodes,
            "query {i} ({q}): restored answers must be bit-identical"
        );
        assert_eq!(got.description, want.description, "query {i}: same route");
        assert_eq!(
            got.stats.materializations, 0,
            "query {i}: restored cache is warm"
        );
    }
    assert_eq!(
        restored.stats().materializations,
        0,
        "the whole restored run re-materialized nothing"
    );
    assert_eq!(restored.stats().queries, workload.len() as u64);
}

/// The restored engine is not frozen: it keeps working as a live engine
/// (new views, invalidation, re-materialization) after the restore.
#[test]
fn restored_engine_stays_live() {
    let (engine, workload) = build_workload();
    for name in ["hr", "d0", "d1", "d2"] {
        let doc = engine.find_document(name).unwrap();
        engine.warm(doc).unwrap();
    }
    let restored = Engine::from_snapshot(engine.snapshot()).unwrap();
    let doc = restored.find_document("d0").unwrap();
    let evicted = restored.invalidate(doc).unwrap();
    assert_eq!(
        evicted,
        restored.catalog().len(),
        "all of d0's restored extensions evicted"
    );
    assert!(
        restored.catalog_epoch() > engine.catalog_epoch(),
        "post-restore mutations advance the epoch"
    );
    let opts = QueryOptions::new().fallback(Fallback::Direct);
    let (_, q) = &workload[0];
    let a = restored.answer_with(doc, q, &opts).unwrap();
    if a.from_views() {
        assert!(
            a.stats.materializations > 0,
            "evicted extensions re-materialize on demand"
        );
    }
}
