//! Engine-level integration tests: the catalog memoization contract
//! (satellite: warm-catalog queries perform zero materializations),
//! selective materialization for TP∩ plans, the plan cache (warm plans
//! are never re-planned; epoch bumps invalidate), and a randomized
//! property test that `Engine::answer` agrees with direct evaluation on
//! random p-documents and view sets (reusing `pxml::generators` and
//! `tpq::generators`).

use prxview::engine::{Engine, EngineError, Fallback, PlanPreference, QueryOptions};
use prxview::pxml::generators::{personnel, random_pdocument, RandomPDocConfig};
use prxview::rewrite::View;
use prxview::tpq::generators::{random_pattern, RandomPatternConfig};
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn p(s: &str) -> TreePattern {
    parse_pattern(s).unwrap()
}

/// Satellite requirement: the second query on a warm catalog performs
/// zero new materializations, observed through the `Answer` stats.
#[test]
fn warm_catalog_performs_zero_materializations() {
    let (pdoc, _) = personnel(25, 3, 11);
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).unwrap();
    engine
        .register_views([
            View::new("bonuses", p("IT-personnel//person/bonus")),
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
        ])
        .unwrap();
    let q = p("IT-personnel//person/bonus[laptop]");
    let cold = engine.answer(doc, &q).expect("plan");
    assert_eq!(cold.stats.materializations, 1, "cold query materializes");
    assert_eq!(cold.stats.cache_hits, 0);
    let warm = engine.answer(doc, &q).expect("plan");
    assert_eq!(warm.stats.materializations, 0, "warm query reuses cache");
    assert_eq!(warm.stats.cache_hits, 1);
    assert_eq!(warm.stats.extensions_touched, 1);
    assert_eq!(warm.nodes, cold.nodes);
    // A different query over the same view is also served from cache.
    let q2 = p("IT-personnel//person/bonus[pda]");
    let other = engine.answer(doc, &q2).expect("plan");
    assert_eq!(other.stats.materializations, 0);
    assert_eq!(other.stats.cache_hits, 1);
    // Engine-lifetime counters agree.
    assert_eq!(engine.stats().materializations, 1);
    assert_eq!(engine.stats().cache_hits, 2);
}

/// Acceptance criterion: a TP∩ plan materializes only the views its parts
/// reference — decoy views in the catalog stay unmaterialized.
#[test]
fn tpi_plan_materializes_only_referenced_views() {
    let (pdoc, _) = personnel(10, 2, 19);
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).unwrap();
    engine
        .register_views([
            View::new("mary", p("IT-personnel//person[name/Mary]/bonus")),
            View::new("all", p("IT-personnel//person/bonus")),
            // Decoys: unrelated or useless for the query below.
            View::new("decoy1", p("IT-personnel//person/name")),
            View::new("decoy2", p("nosuchlabel//nothing")),
            View::new("decoy3", p("IT-personnel//person")),
        ])
        .unwrap();
    let q = p("IT-personnel//person[name/Mary]/bonus[pda]");
    let tpi_only = QueryOptions::new().plan_preference(PlanPreference::TpiOnly);
    let answer = engine.answer_with(doc, &q, &tpi_only).expect("TP∩ plan");
    let plan = answer.plan.as_ref().expect("from views");
    let referenced = plan.referenced_views();
    assert!(
        referenced.len() < engine.catalog().len(),
        "plan must not reference the whole catalog: {referenced:?}"
    );
    assert_eq!(
        answer.stats.extensions_touched,
        referenced.len(),
        "execution touches exactly the referenced extensions"
    );
    assert_eq!(answer.stats.materializations, referenced.len());
    // The catalog holds extensions only for the referenced views.
    assert_eq!(
        engine.catalog().cached_extensions(doc),
        referenced.len(),
        "decoy views must stay unmaterialized"
    );
    // And the answers are right.
    let direct = engine.answer_direct(doc, &q).unwrap();
    assert_eq!(answer.nodes.len(), direct.nodes.len());
    for ((n1, p1), (n2, p2)) in answer.nodes.iter().zip(&direct.nodes) {
        assert_eq!(n1, n2);
        assert!((p1 - p2).abs() < 1e-9);
    }
}

/// `warm` pre-materializes everything; afterwards every plan runs with
/// zero materializations, TP∩ included.
#[test]
fn warm_precomputes_all_views() {
    let (pdoc, _) = personnel(8, 2, 29);
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).unwrap();
    engine
        .register_views([
            View::new("mary", p("IT-personnel//person[name/Mary]/bonus")),
            View::new("all", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
    assert_eq!(engine.warm(doc).unwrap(), 2);
    let q = p("IT-personnel//person[name/Mary]/bonus[laptop]");
    let tpi_only = QueryOptions::new().plan_preference(PlanPreference::TpiOnly);
    let answer = engine.answer_with(doc, &q, &tpi_only).expect("TP∩ plan");
    assert_eq!(answer.stats.materializations, 0);
    assert_eq!(answer.stats.cache_hits, answer.stats.extensions_touched);
}

/// Satellite requirement: randomized agreement between `Engine::answer`
/// and direct evaluation. Queries are random tree patterns; the catalog
/// holds prefix views of the query (frequently rewritable) plus an
/// unrelated random decoy view.
#[test]
fn random_engine_answers_agree_with_direct() {
    let mut rng = StdRng::seed_from_u64(2026);
    let doc_cfg = RandomPDocConfig {
        max_depth: 5,
        max_children: 3,
        dist_density: 0.5,
        target_size: 25,
        ..RandomPDocConfig::default()
    };
    let pat_cfg = RandomPatternConfig {
        mb_len: 3,
        preds_per_node: 0.6,
        pred_depth: 2,
        ..RandomPatternConfig::default()
    };
    let mut planned = 0usize;
    let mut fell_back = 0usize;
    for trial in 0..120 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        let q = random_pattern(&pat_cfg, &mut rng);
        let decoy = random_pattern(&pat_cfg, &mut rng);
        let mut engine = Engine::new();
        let doc = engine.add_document("rand", pdoc).unwrap();
        // Prefix views of q admit TP plans often; add the full pattern
        // sometimes to exercise identity plans too.
        let mut views = Vec::new();
        for k in 1..=q.mb_len() {
            views.push(View::new(format!("prefix{k}"), q.prefix(k)));
        }
        views.push(View::new("decoy", decoy));
        engine.register_views(views).unwrap();
        let opts = QueryOptions::new().fallback(Fallback::Direct);
        let answer = match engine.answer_with(doc, &q, &opts) {
            Ok(a) => a,
            Err(e) => panic!("trial {trial}: engine error {e}"),
        };
        if answer.from_views() {
            planned += 1;
        } else {
            fell_back += 1;
        }
        let direct = engine.answer_direct(doc, &q).unwrap();
        assert_eq!(
            answer.nodes.len(),
            direct.nodes.len(),
            "trial {trial}: node sets differ for {q}\n got {:?}\nwant {:?}",
            answer.nodes,
            direct.nodes
        );
        for ((n1, p1), (n2, p2)) in answer.nodes.iter().zip(&direct.nodes) {
            assert_eq!(n1, n2, "trial {trial}: {q}");
            assert!(
                (p1 - p2).abs() < 1e-8,
                "trial {trial}: {q} at {n1}: {p1} vs {p2}"
            );
        }
    }
    // The workload must actually exercise the rewriting path.
    assert!(
        planned >= 30,
        "too few planned cases: {planned} planned, {fell_back} direct"
    );
}

/// Satellite requirement (serving-layer PR): a warm plan cache. The
/// second arrival of a structurally-equal query is answered without
/// re-planning; `register_view` and `invalidate` bump the catalog epoch
/// and drop cached plans.
#[test]
fn warm_plan_cache_skips_planning() {
    let (pdoc, _) = personnel(10, 2, 5);
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).unwrap();
    engine
        .register_view(View::new("bonuses", p("IT-personnel//person/bonus")))
        .unwrap();
    let epoch0 = engine.catalog_epoch();
    let q = p("IT-personnel//person/bonus[laptop]");
    engine.answer(doc, &q).unwrap();
    assert_eq!(engine.stats().plan_cache_misses, 1, "cold: planned once");
    assert_eq!(engine.stats().plan_cache_hits, 0);
    // Same query again — and a structurally-equal spelling of it (the
    // cache keys on the canonical form, not the text).
    engine.answer(doc, &q).unwrap();
    let respelled = p("IT-personnel//person/bonus[laptop]");
    engine.answer(doc, &respelled).unwrap();
    assert_eq!(
        engine.stats().plan_cache_misses,
        1,
        "warm: never re-planned"
    );
    assert_eq!(engine.stats().plan_cache_hits, 2);
    // Explicit planning shares the same cache.
    engine.plan(&q).unwrap();
    assert_eq!(engine.stats().plan_cache_hits, 3);
    // Different options are a different key.
    let opts = QueryOptions::new().interleaving_limit(123);
    engine.answer_with(doc, &q, &opts).unwrap();
    assert_eq!(engine.stats().plan_cache_misses, 2);
    // Negative outcomes are cached too.
    let hopeless = p("unrelated//thing");
    assert!(engine.answer(doc, &hopeless).is_err());
    assert!(engine.answer(doc, &hopeless).is_err());
    assert_eq!(engine.stats().plan_cache_misses, 3);
    assert_eq!(engine.stats().plan_cache_hits, 4);
    // Registering a view bumps the epoch and drops every cached plan:
    // the next arrival re-plans (it may now have a better rewriting).
    engine
        .register_view(View::new(
            "rick",
            p("IT-personnel//person[name/Rick]/bonus"),
        ))
        .unwrap();
    assert!(engine.catalog_epoch() > epoch0);
    engine.answer(doc, &q).unwrap();
    assert_eq!(engine.stats().plan_cache_misses, 4, "epoch bump re-plans");
    // Invalidation bumps the epoch as well.
    let epoch1 = engine.catalog_epoch();
    engine.invalidate(doc).unwrap();
    assert!(engine.catalog_epoch() > epoch1);
    engine.answer(doc, &q).unwrap();
    assert_eq!(engine.stats().plan_cache_misses, 5);
}

/// The plan cache must not change what is answered: cached and
/// fresh-engine answers are identical, including under concurrency.
#[test]
fn plan_cache_preserves_answers() {
    let (pdoc, _) = personnel(15, 3, 17);
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).unwrap();
    engine
        .register_views([
            View::new("bonuses", p("IT-personnel//person/bonus")),
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
        ])
        .unwrap();
    let q = p("IT-personnel//person/bonus[laptop]");
    let cold = engine.answer(doc, &q).unwrap();
    let cached = engine.answer(doc, &q).unwrap();
    assert_eq!(cold.nodes, cached.nodes);
    assert_eq!(cold.description, cached.description);
    // A concurrent batch of equal queries against a *cold* plan cache:
    // racing workers may each plan once before the first insert lands,
    // but the cache must fill and the answers must match the reference.
    let (pdoc, _) = personnel(15, 3, 17);
    let mut fresh = Engine::new();
    let fresh_doc = fresh.add_document("personnel", pdoc).unwrap();
    fresh
        .register_views([
            View::new("bonuses", p("IT-personnel//person/bonus")),
            View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
        ])
        .unwrap();
    assert_eq!(fresh.stats().plan_cache_misses, 0, "cache starts cold");
    let batch: Vec<_> = (0..16).map(|_| (fresh_doc, q.clone())).collect();
    let results = fresh.answer_batch_with(&batch, fresh.options(), 4);
    for r in &results {
        assert_eq!(r.as_ref().expect("batch answer").nodes, cold.nodes);
    }
    let misses = fresh.stats().plan_cache_misses;
    assert!(
        (1..=4).contains(&misses),
        "16 equal queries on 4 workers plan between 1 and 4 times, got {misses}"
    );
    assert_eq!(fresh.stats().plan_cache_hits, 16 - misses);
}

/// Satellite regression: invalidation evicts the document's extensions
/// *and* resets its cache counters, so the next query reports a
/// re-materialization — never a stale cache hit.
#[test]
fn invalidation_resets_stats_and_forces_rematerialization() {
    let (pdoc, _) = personnel(10, 2, 3);
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc.clone()).unwrap();
    engine
        .register_view(View::new("bonuses", p("IT-personnel//person/bonus")))
        .unwrap();
    let q = p("IT-personnel//person/bonus[laptop]");
    engine.answer(doc, &q).unwrap();
    engine.answer(doc, &q).unwrap();
    let before = engine.doc_stats(doc).unwrap();
    assert_eq!(before.materializations, 1);
    assert_eq!(before.cache_hits, 1);

    let evicted = engine.invalidate(doc).unwrap();
    assert_eq!(evicted, 1, "one cached extension evicted");
    assert_eq!(engine.catalog().cached_extensions(doc), 0);
    let reset = engine.doc_stats(doc).unwrap();
    assert_eq!(reset, Default::default(), "doc counters reset");

    // The regression: post-invalidation queries must re-materialize.
    let after = engine.answer(doc, &q).unwrap();
    assert_eq!(after.stats.materializations, 1, "re-materialized");
    assert_eq!(after.stats.cache_hits, 0, "not a stale cache hit");
    assert_eq!(engine.doc_stats(doc).unwrap().materializations, 1);
    assert_eq!(engine.stats().invalidations, 1);

    // Invalidating an empty cache is a no-op that does not count.
    let mut empty = Engine::new();
    let d = empty.add_document("p", pdoc).unwrap();
    assert_eq!(empty.invalidate(d).unwrap(), 0);
    assert_eq!(empty.stats().invalidations, 0);
}

/// Random documents keyed independently in one shared engine: answers on
/// one document are unaffected by cache entries of another.
#[test]
fn shared_engine_keys_cache_per_document() {
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = RandomPDocConfig::default();
    let mut engine = Engine::new();
    engine.register_view(View::new("va", p("a//b"))).unwrap();
    let d1 = engine
        .add_document("d1", random_pdocument(&cfg, &mut rng))
        .unwrap();
    let d2 = engine
        .add_document("d2", random_pdocument(&cfg, &mut rng))
        .unwrap();
    let q = p("a//b");
    let opts = QueryOptions::new().fallback(Fallback::Direct);
    let a1 = engine.answer_with(d1, &q, &opts).unwrap();
    let a2 = engine.answer_with(d2, &q, &opts).unwrap();
    let direct1 = engine.answer_direct(d1, &q).unwrap();
    let direct2 = engine.answer_direct(d2, &q).unwrap();
    assert_eq!(a1.nodes, direct1.nodes);
    assert_eq!(a2.nodes, direct2.nodes);
    // A handle from one engine is meaningless in another with fewer
    // documents: typed UnknownDocument, not a panic or a wrong answer.
    let mut other = Engine::new();
    other.register_view(View::new("va", p("a//b"))).unwrap();
    assert!(matches!(
        other.answer(d2, &q),
        Err(EngineError::UnknownDocument(_))
    ));
}
