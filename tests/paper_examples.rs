//! Integration tests replaying every worked example of the paper
//! end-to-end across the crates (the executable companion of
//! EXPERIMENTS.md E1–E12).

use prxview::pxml::examples_paper::*;
use prxview::pxml::{NodeId, PxSpace};
use prxview::rewrite::view::{DetExtension, ProbExtension};
use prxview::rewrite::View;
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;

fn p(s: &str) -> TreePattern {
    parse_pattern(s).unwrap()
}

fn qrbon() -> TreePattern {
    p("IT-personnel//person[name/Rick]/bonus[laptop]")
}
fn qbon() -> TreePattern {
    p("IT-personnel//person/bonus[laptop]")
}
fn v1bon() -> TreePattern {
    p("IT-personnel//person[name/Rick]/bonus")
}
fn v2bon() -> TreePattern {
    p("IT-personnel//person/bonus")
}

/// E1 — Examples 1–3: `dPER`, `P̂PER`, and `Pr(dPER) = 0.4725`.
#[test]
fn e1_pper_semantics() {
    let d = fig1_dper();
    let pper = fig2_pper();
    assert!(pper.validate().is_ok());
    let space: PxSpace = pper.px_space();
    assert!((space.total_probability() - 1.0).abs() < 1e-9);
    let pr_dper = space.probability_where(|w| w.id_set_key() == d.id_set_key());
    assert!((pr_dper - 0.4725).abs() < 1e-9);
    // Distinct worlds: 2 (Rick/John) × 2 (pda/laptop) × 2 (ind-pair/15),
    // since every mux has full mass and the ind children are certain.
    assert_eq!(space.len(), 8);
}

/// E2 — Examples 4–5: query parsing and answers over `dPER`.
#[test]
fn e2_queries_over_dper() {
    let d = fig1_dper();
    use prxview::tpq::embed::eval;
    assert_eq!(eval(&qrbon(), &d), vec![NodeId(5)]);
    assert_eq!(eval(&qbon(), &d), vec![NodeId(5)]);
    assert_eq!(eval(&v1bon(), &d), vec![NodeId(5)]);
    assert_eq!(eval(&v2bon(), &d), vec![NodeId(5), NodeId(7)]);
}

/// E3 — Example 6: probabilistic answers over `P̂PER`.
#[test]
fn e3_probabilistic_answers() {
    let pper = fig2_pper();
    let n5 = NodeId(5);
    assert!((prxview::peval::eval_tp_at(&pper, &qbon(), n5) - 0.9).abs() < 1e-9);
    assert!((prxview::peval::eval_tp_at(&pper, &v1bon(), n5) - 0.75).abs() < 1e-9);
    assert!((prxview::peval::eval_tp_at(&pper, &qrbon(), n5) - 0.675).abs() < 1e-9);
    let v2_answers = prxview::peval::eval_tp(&pper, &v2bon());
    assert_eq!(v2_answers, vec![(NodeId(5), 1.0), (NodeId(7), 1.0)]);
}

/// E4 — Examples 7–8: view extensions, deterministic and probabilistic.
#[test]
fn e4_view_extensions() {
    let d = fig1_dper();
    let pper = fig2_pper();
    let v1 = View::new("v1BON", v1bon());
    let det = DetExtension::materialize(&d, &v1);
    assert_eq!(det.results.len(), 1);
    let prob = ProbExtension::materialize(&pper, &v1);
    assert_eq!(prob.results.len(), 1);
    assert!((prob.results[0].prob - 0.75).abs() < 1e-9);
    // Id markers are queryable: doc(v)-rooted navigation reaches Id(5).
    let _sub = prob.result_subtree(0);
    let marker = p("bonus[Id-5]"); // placeholder; real label has parens
    let _ = marker;
    let occ = prob.occurrences_in_result(0, NodeId(5));
    assert_eq!(occ.len(), 1);
}

/// E5 — Examples 9–10: prefixes, suffixes, tokens, `q′`, `v′`, `q″`.
#[test]
fn e5_structural_operations() {
    let q = qrbon();
    // Example 9: tokens t1 = IT-personnel, t2 = person[...]/bonus[laptop].
    assert_eq!(q.token_ranges(), vec![(1, 1), (2, 3)]);
    let suffix2 = q.suffix(2);
    assert_eq!(
        suffix2.canonical_key(),
        p("person[name/Rick]/bonus[laptop]").canonical_key()
    );
    // Example 10 (k = 3): q′, q″, v′.
    let qp = q.prefix(3).strip_output_predicates();
    assert_eq!(qp.canonical_key(), v1bon().canonical_key());
    let qpp = q.prefix(3).only_output_predicates();
    assert_eq!(qpp.canonical_key(), qbon().canonical_key());
    let v = v1bon();
    assert_eq!(
        v.strip_output_predicates().canonical_key(),
        v1bon().canonical_key()
    );
}

/// E6 — Example 11 / Figure 5 (left): deterministic rewriting exists, no
/// probabilistic one; the two witnesses are extension-indistinguishable.
#[test]
fn e6_example_11_witnesses() {
    let q = p("a/b[c]");
    let v = View::new("v", p("a[.//c]/b"));
    // Deterministic rewriting exists (Fact 1)…
    let unfolded = prxview::tpq::comp(&v.pattern, &q.suffix(2));
    assert!(prxview::tpq::equivalent(&unfolded, &q));
    // …but TPrewrite rejects (v′ ̸⊥ q″)…
    assert!(prxview::rewrite::tp_rewrite(&q, std::slice::from_ref(&v)).is_empty());
    // …and rightly so: P̂1, P̂2 differ on q but have identical extensions.
    let p1 = fig5_p1();
    let p2 = fig5_p2();
    let q1 = prxview::peval::eval_tp_at(&p1, &q, fig5_p1_b());
    let q2 = prxview::peval::eval_tp_at(&p2, &q, fig5_p2_b());
    assert!((q1 - 0.325).abs() < 1e-9);
    assert!((q2 - 0.5).abs() < 1e-9);
    let e1 = ProbExtension::materialize(&p1, &v);
    let e2 = ProbExtension::materialize(&p2, &v);
    assert_eq!(e1.results.len(), 1);
    assert_eq!(e2.results.len(), 1);
    assert!((e1.results[0].prob - 0.65).abs() < 1e-9);
    assert!((e2.results[0].prob - 0.65).abs() < 1e-9);
    // The bundled subtrees are structurally identical (b with a 0.5-mux c).
    let s1 = e1.result_subtree(0);
    let s2 = e2.result_subtree(0);
    assert_eq!(s1.distributional_count(), s2.distributional_count());
    assert_eq!(s1.ordinary_ids().count(), s2.ordinary_ids().count());
}

/// E7 — Example 12 / Figure 5 (right): the prefix-suffix obstruction.
#[test]
fn e7_example_12_witnesses() {
    let q = p("a//b[e]/c/b/c//d");
    let v = View::new("v", p("a//b[e]/c/b/c"));
    let (nc1, nc2, nd) = fig5_chain_nodes();
    let p3 = fig5_p3();
    let p4 = fig5_p4();
    // u = 2 for the last token (b, c, b, c).
    let t = v.pattern.last_token();
    let labels = t.mb_labels(1, t.mb_len());
    assert_eq!(prxview::tpq::pattern::max_prefix_suffix(&labels), 2);
    // Probabilities differ…
    assert!((prxview::peval::eval_tp_at(&p3, &q, nd) - 0.288).abs() < 1e-9);
    assert!((prxview::peval::eval_tp_at(&p4, &q, nd) - 0.264).abs() < 1e-9);
    // …while the extensions agree (0.12 at nc1, 0.24 at nc2, same trees).
    for pdoc in [&p3, &p4] {
        let ext = ProbExtension::materialize(pdoc, &v);
        let probs: Vec<(NodeId, f64)> = ext.results.iter().map(|r| (r.orig, r.prob)).collect();
        assert_eq!(probs.len(), 2);
        assert_eq!(probs[0].0, nc1);
        assert!((probs[0].1 - 0.12).abs() < 1e-9);
        assert_eq!(probs[1].0, nc2);
        assert!((probs[1].1 - 0.24).abs() < 1e-9);
    }
    // TPrewrite rejects.
    assert!(prxview::rewrite::tp_rewrite(&q, &[v]).is_empty());
}

/// E8 — Example 13: the restricted plan's `fr` over `(P̂PER)_{v2BON}`.
#[test]
fn e8_example_13_restricted_plan() {
    use prxview::engine::Engine;
    let mut engine = Engine::new();
    let doc = engine.add_document("pper", fig2_pper()).unwrap();
    engine.register_view(View::new("v2BON", v2bon())).unwrap();
    let answer = engine.answer(doc, &qbon()).expect("plan exists");
    assert!(matches!(answer.plan, Some(prxview::rewrite::Plan::Tp(_))));
    assert_eq!(answer.stats.extensions_touched, 1);
    assert_eq!(answer.nodes.len(), 1);
    assert_eq!(answer.nodes[0].0, NodeId(5));
    assert!((answer.nodes[0].1 - 0.9).abs() < 1e-9);
}

/// E9 — Theorem 2 boundary: accept/reject matrix around Example 12.
#[test]
fn e9_theorem_2_matrix() {
    use prxview::rewrite::tp_rewrite::{try_view, TpReject};
    // Rejected: predicates on the prefix-suffix zone.
    let q1 = p("a//b[e]/c/b/c//d");
    let v1 = vec![View::new("v", p("a//b[e]/c/b/c"))];
    assert_eq!(
        try_view(&q1, &v1, 0).err(),
        Some(TpReject::PrefixSuffixPredicates)
    );
    // Accepted: same shape, predicate moved to the token output.
    let q2 = p("a//b/c/b/c[e]//d");
    let v2 = vec![View::new("v", p("a//b/c/b/c[e]"))];
    assert!(try_view(&q2, &v2, 0).is_ok());
    // Accepted: u = 0 tokens need no condition.
    let q3 = p("a//b[e]/c//d");
    let v3 = vec![View::new("v", p("a//b[e]/c"))];
    let rw = try_view(&q3, &v3, 0).unwrap();
    assert_eq!(rw.u, 0);
    assert!(!rw.restricted);
}

/// E10 — Example 15: product-form TP∩ probability `0.75 × 0.9 ÷ 1`.
#[test]
fn e10_example_15_product() {
    use prxview::engine::{Engine, PlanPreference, QueryOptions};
    let q = qrbon();
    let mut engine = Engine::new();
    let doc = engine.add_document("pper", fig2_pper()).unwrap();
    engine
        .register_views([View::new("v1BON", v1bon()), View::new("v2BON", v2bon())])
        .unwrap();
    // Force the TP∩ path (TPIrewrite) and check the numbers.
    let tpi_only = QueryOptions::new().plan_preference(PlanPreference::TpiOnly);
    let answer = engine
        .answer_with(doc, &q, &tpi_only)
        .expect("TPIrewrite plans");
    assert!(matches!(answer.plan, Some(prxview::rewrite::Plan::Tpi(_))));
    assert_eq!(answer.nodes.len(), 1);
    assert_eq!(answer.nodes[0].0, NodeId(5));
    assert!(
        (answer.nodes[0].1 - 0.675).abs() < 1e-9,
        "{:?}",
        answer.nodes
    );
}

/// E11 — Example 16: the `S(q,V)` system with dependent views.
#[test]
fn e11_example_16_system() {
    use prxview::rewrite::system::build_system;
    let q = p("a[1]/b[2]/c[3]/d");
    let views = vec![
        p("a[1]/b/c[3]/d"),
        p("a/b[2]/c[3]/d"),
        p("a[1]/b[2]/c/d"),
        p("a//d"),
    ];
    let sys = build_system(&q, &views);
    assert!(sys.is_solvable());
    // Dropping v4 (the appearance source) breaks solvability.
    let sys2 = build_system(&q, &views[..3]);
    assert!(!sys2.is_solvable());
}

/// E12 — Theorem 4: the matching reduction agrees with the direct check.
#[test]
fn e12_theorem_4_reduction() {
    use prxview::rewrite::hardness::*;
    assert!(matching_via_rewriting(4, &[vec![1, 2], vec![3, 4]]));
    assert!(!matching_via_rewriting(4, &[vec![1, 2], vec![2, 3]]));
    assert!(matching_via_rewriting(
        6,
        &[vec![1, 2, 3], vec![4, 5, 6], vec![2, 3, 4]]
    ));
    assert!(!matching_via_rewriting(
        6,
        &[vec![1, 2, 3], vec![3, 4, 5], vec![5, 6, 1]]
    ));
}
