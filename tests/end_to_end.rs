//! Cross-crate integration tests: the full pipeline (register views →
//! plan → answer from memoized extensions only) against direct
//! evaluation, over generated workloads — all through the stateful
//! `engine::Engine`.

use prxview::engine::{Engine, EngineError, Fallback, QueryOptions};
use prxview::pxml::generators::personnel;
use prxview::pxml::text::parse_pdocument;
use prxview::pxml::{NodeId, PDocument};
use prxview::rewrite::View;
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;

fn p(s: &str) -> TreePattern {
    parse_pattern(s).unwrap()
}

fn assert_answers_match(got: &[(NodeId, f64)], want: &[(NodeId, f64)], ctx: &str, tol: f64) {
    assert_eq!(
        got.len(),
        want.len(),
        "{ctx}: node sets differ\n got: {got:?}\nwant: {want:?}"
    );
    for ((n1, p1), (n2, p2)) in got.iter().zip(want) {
        assert_eq!(n1, n2, "{ctx}");
        assert!((p1 - p2).abs() < tol, "{ctx} at {n1}: {p1} vs {p2}");
    }
}

/// Engine round trip: answers via views must equal direct evaluation, and
/// a second query over the warm catalog must not re-materialize.
fn run_case(pdoc: &PDocument, q: &TreePattern, views: Vec<View>, ctx: &str) {
    let mut engine = Engine::new();
    let doc = engine
        .add_document("case", pdoc.clone())
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    engine
        .register_views(views)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let cold = engine
        .answer(doc, q)
        .unwrap_or_else(|e| panic!("{ctx}: expected a plan, got {e}"));
    assert!(cold.from_views(), "{ctx}");
    let want = engine.answer_direct(doc, q).unwrap();
    assert_answers_match(&cold.nodes, &want.nodes, ctx, 1e-9);
    // Warm catalog: same answers, zero new materializations.
    let warm = engine.answer(doc, q).unwrap();
    assert_eq!(warm.stats.materializations, 0, "{ctx}: warm run");
    assert_eq!(
        warm.stats.cache_hits, warm.stats.extensions_touched,
        "{ctx}"
    );
    // Same cached extension ⇒ bitwise-identical answers.
    assert_eq!(warm.nodes, cold.nodes, "{ctx}: warm run differs");
}

#[test]
fn personnel_scaled_tp_plan() {
    // The running example at 30 persons: answer "laptop bonuses" from the
    // materialized bonuses view.
    let (pdoc, _) = personnel(30, 3, 17);
    let q = p("IT-personnel//person/bonus[laptop]");
    let views = vec![View::new("bonuses", p("IT-personnel//person/bonus"))];
    run_case(&pdoc, &q, views, "personnel 30x3 laptop");
}

#[test]
fn personnel_scaled_named_person_plan() {
    let (pdoc, _) = personnel(20, 2, 5);
    let q = p("IT-personnel//person[name/Rick]/bonus");
    let views = vec![View::new(
        "rick",
        p("IT-personnel//person[name/Rick]/bonus"),
    )];
    run_case(&pdoc, &q, views, "personnel rick identity view");
}

#[test]
fn personnel_deeper_compensation() {
    let (pdoc, _) = personnel(15, 3, 23);
    // Navigate below the view output: bonus values under pda projects.
    let q = p("IT-personnel//person/bonus/pda");
    let views = vec![View::new("bonuses", p("IT-personnel//person/bonus"))];
    run_case(&pdoc, &q, views, "personnel pda under bonuses view");
}

#[test]
fn tpi_plan_on_personnel() {
    let (pdoc, _) = personnel(12, 2, 31);
    // Two partial views that only together answer the query.
    let q = p("IT-personnel//person[name/Mary]/bonus[pda]");
    let views = vec![
        View::new("mary", p("IT-personnel//person[name/Mary]/bonus")),
        View::new("all", p("IT-personnel//person/bonus")),
    ];
    run_case(&pdoc, &q, views, "personnel TP∩ mary+pda");
}

#[test]
fn descendant_views_with_nested_results() {
    // Nested view results (b under b) with compensation below.
    let pdoc =
        parse_pdocument("a#0[b#1[mux#2(0.6: c#3), b#4[ind#5(0.5: c#6), mux#7(0.3: b#8[c#9])]]]")
            .unwrap();
    let q = p("a//b/c");
    let views = vec![View::new("bs", p("a//b"))];
    run_case(&pdoc, &q, views, "nested b results");
}

#[test]
fn inclusion_exclusion_plan_with_three_ancestors() {
    // Deep nesting: up to three selected ancestors for one answer node.
    let pdoc = parse_pdocument(
        "a#0[b#1[ind#2(0.8: b#3[ind#4(0.6: b#5[mux#6(0.5: x#7[d#8])]), mux#9(0.2: x#10)])]]",
    )
    .unwrap();
    let q = p("a//b//d");
    let views = vec![View::new("bs", p("a//b"))];
    run_case(&pdoc, &q, views, "three nested ancestors");
}

#[test]
fn no_plan_is_a_typed_error_with_direct_fallback() {
    let mut engine = Engine::new();
    let doc = engine
        .add_document("d", parse_pdocument("a#0[b#1[mux#2(0.5: c#3)]]").unwrap())
        .unwrap();
    // Example 11's pathological view: no probabilistic rewriting.
    engine
        .register_view(View::new("v", p("a[.//c]/b")))
        .unwrap();
    let q = p("a/b[c]");
    let err = engine.answer(doc, &q).expect_err("no rewriting");
    assert!(matches!(err, EngineError::Plan(_)), "{err}");
    // Opting into direct fallback still answers, touching no extension.
    let opts = QueryOptions::new().fallback(Fallback::Direct);
    let fallback = engine.answer_with(doc, &q, &opts).unwrap();
    assert!(!fallback.from_views());
    assert_eq!(fallback.stats.extensions_touched, 0);
    assert_eq!(fallback.nodes, vec![(NodeId(1), 0.5)]);
}

#[test]
fn det_and_exp_nodes_supported_end_to_end() {
    // The §2 remark: results carry over to det/exp distributional nodes.
    let mut pdoc = PDocument::new(prxview::pxml::Label::new("a"));
    let root = pdoc.root();
    let det = pdoc.add_dist(root, prxview::pxml::PKind::Det, 1.0);
    let b = pdoc.add_ordinary(det, prxview::pxml::Label::new("b"), 1.0);
    let exp = pdoc.add_dist(b, prxview::pxml::PKind::Exp(Vec::new()), 1.0);
    let _c = pdoc.add_ordinary(exp, prxview::pxml::Label::new("c"), 1.0);
    let _d = pdoc.add_ordinary(exp, prxview::pxml::Label::new("d"), 1.0);
    pdoc.set_exp_distribution(exp, vec![(0b11, 0.4), (0b01, 0.3), (0b00, 0.3)]);
    assert!(pdoc.validate().is_ok());
    let q = p("a/b[c]");
    let views = vec![View::new("bs", p("a/b"))];
    run_case(&pdoc, &q, views, "det+exp nodes");
    // Exp correlation visible: Pr(b has c and d) = 0.4 ≠ 0.7 × 0.4.
    let joint = prxview::peval::eval_intersection_at(&pdoc, &[p("a/b[c]"), p("a/b[d]")], b);
    assert!((joint - 0.4).abs() < 1e-9);
}

#[test]
fn extension_only_access_is_sufficient() {
    // Materialize extensions, then *drop* the original p-document before
    // computing: the API makes it impossible to cheat, this test just
    // documents the workflow (low-level layer, below the engine).
    let (pdoc, _) = personnel(10, 2, 77);
    let q = p("IT-personnel//person/bonus[laptop]");
    let view = View::new("bonuses", p("IT-personnel//person/bonus"));
    let want = prxview::rewrite::answer_direct(&pdoc, &q);
    let rw = prxview::rewrite::tp_rewrite(&q, std::slice::from_ref(&view))
        .into_iter()
        .next()
        .expect("plan");
    let ext = prxview::rewrite::ProbExtension::materialize(&pdoc, &view);
    drop(pdoc);
    let got = prxview::rewrite::fr_tp::answer_tp(&rw, &ext);
    assert_answers_match(&got, &want, "extension-only", 1e-9);
}

#[test]
fn plans_agree_with_monte_carlo() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (pdoc, _) = personnel(8, 2, 3);
    let q = p("IT-personnel//person/bonus[tablet]");
    let mut engine = Engine::new();
    let doc = engine.add_document("mc", pdoc).unwrap();
    engine
        .register_view(View::new("bonuses", p("IT-personnel//person/bonus")))
        .unwrap();
    let answer = engine.answer(doc, &q).expect("plan");
    let mut rng = StdRng::seed_from_u64(1);
    let pdoc = engine.document(doc).unwrap();
    for (n, prob) in answer.nodes {
        let est = prxview::peval::mc::estimate_tp_at(&pdoc, &q, n, 20_000, &mut rng);
        assert!(
            est.covers(prob),
            "MC {est:?} should cover plan probability {prob} at {n}"
        );
    }
}
