//! Property-based tests (proptest) for the core invariants:
//!
//! * the evaluation DP agrees with exact possible-world enumeration;
//! * sampling frequencies agree with enumerated marginals;
//! * containment mappings imply answer-set containment;
//! * the syntactic c-independence test is sound for the probabilistic
//!   identity;
//! * whenever TPrewrite accepts, `fr` equals direct evaluation;
//! * whenever `S(q,V)` solves, its `fr` equals direct evaluation;
//! * TP∩ evaluation agrees with the union of interleavings;
//! * containment is reflexive and transitive;
//! * `tpq::intersect` is commutative up to canonical form;
//! * symbol interning round-trips (`intern(resolve(s)) == s`).

use proptest::prelude::*;
use prxview::pxml::{Label, NodeId, PDocument, PKind};
use prxview::rewrite::View;
use prxview::tpq::pattern::{Axis, TreePattern};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

const LABELS: [&str; 4] = ["a", "b", "c", "d"];

#[derive(Clone, Debug)]
enum NodeSpec {
    Ordinary(usize, Vec<NodeSpec>),
    Mux(Vec<(u32, NodeSpec)>),
    Ind(Vec<(u32, NodeSpec)>),
}

fn node_spec(depth: u32) -> impl Strategy<Value = NodeSpec> {
    let leaf = (0..LABELS.len()).prop_map(|l| NodeSpec::Ordinary(l, Vec::new()));
    leaf.prop_recursive(depth, 12, 2, |inner| {
        prop_oneof![
            3 => ((0..LABELS.len()), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(l, kids)| NodeSpec::Ordinary(l, kids)),
            1 => prop::collection::vec(((10u32..90), inner.clone()), 1..2)
                .prop_map(NodeSpec::Mux),
            1 => prop::collection::vec(((10u32..95), inner), 1..3)
                .prop_map(NodeSpec::Ind),
        ]
    })
}

fn build_node(pdoc: &mut PDocument, parent: NodeId, spec: &NodeSpec, prob: f64) {
    match spec {
        NodeSpec::Ordinary(l, kids) => {
            let n = pdoc.add_ordinary(parent, Label::new(LABELS[*l]), prob);
            for k in kids {
                build_node(pdoc, n, k, 1.0);
            }
        }
        NodeSpec::Mux(kids) => {
            let total: u32 = kids.iter().map(|&(p, _)| p).sum();
            let m = pdoc.add_dist(parent, PKind::Mux, prob);
            for (p, k) in kids {
                // Normalize so mux mass stays ≤ 1.
                build_node(pdoc, m, k, *p as f64 / (total.max(100)) as f64);
            }
        }
        NodeSpec::Ind(kids) => {
            let m = pdoc.add_dist(parent, PKind::Ind, prob);
            for (p, k) in kids {
                build_node(pdoc, m, k, *p as f64 / 100.0);
            }
        }
    }
}

fn pdoc_from_spec(specs: &[NodeSpec]) -> PDocument {
    let mut pdoc = PDocument::new(Label::new("a"));
    let root = pdoc.root();
    for s in specs {
        build_node(&mut pdoc, root, s, 1.0);
    }
    pdoc
}

prop_compose! {
    fn small_pdoc()(specs in prop::collection::vec(node_spec(3), 1..3)) -> PDocument {
        pdoc_from_spec(&specs)
    }
}

#[derive(Clone, Debug)]
struct PatSpec {
    mb_labels: Vec<usize>,
    mb_desc: Vec<bool>,
    preds: Vec<(usize, usize, bool)>, // (mb position, label, descendant?)
}

fn pattern_spec() -> impl Strategy<Value = PatSpec> {
    (
        prop::collection::vec(0..LABELS.len(), 0..3),
        prop::collection::vec(any::<bool>(), 3),
        prop::collection::vec((0..3usize, 0..LABELS.len(), any::<bool>()), 0..3),
    )
        .prop_map(|(mb_labels, mb_desc, preds)| PatSpec {
            mb_labels,
            mb_desc,
            preds,
        })
}

fn build_pattern(spec: &PatSpec) -> TreePattern {
    // Root label fixed to "a" so the pattern matches the generated roots.
    let mut q = TreePattern::leaf(Label::new("a"));
    let mut mb = vec![q.root()];
    for (i, &l) in spec.mb_labels.iter().enumerate() {
        let axis = if spec.mb_desc[i % spec.mb_desc.len()] {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let n = q.add_child(*mb.last().unwrap(), axis, Label::new(LABELS[l]));
        mb.push(n);
    }
    q.set_output(*mb.last().unwrap());
    for &(pos, l, desc) in &spec.preds {
        let anchor = mb[pos % mb.len()];
        let axis = if desc { Axis::Descendant } else { Axis::Child };
        q.add_child(anchor, axis, Label::new(LABELS[l]));
    }
    q
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DP evaluation ≡ exact enumeration, for every node.
    #[test]
    fn dp_matches_enumeration(pdoc in small_pdoc(), qs in pattern_spec()) {
        let q = build_pattern(&qs);
        prop_assume!(q.len() <= 12);
        if let Some(space) = pdoc.px_space_limited(1 << 14) {
            let dp = prxview::peval::eval_tp(&pdoc, &q);
            let exact = prxview::peval::exact::eval_tp_over_space(&space, &q);
            prop_assert_eq!(dp.len(), exact.len());
            for ((n1, p1), (n2, p2)) in dp.iter().zip(&exact) {
                prop_assert_eq!(n1, n2);
                prop_assert!((p1 - p2).abs() < 1e-9, "{} vs {}", p1, p2);
            }
        }
    }

    /// Containment mapping ⇒ answer containment on sampled worlds.
    #[test]
    fn containment_implies_answers(pdoc in small_pdoc(), s1 in pattern_spec(), s2 in pattern_spec()) {
        let q1 = build_pattern(&s1);
        let q2 = build_pattern(&s2);
        if prxview::tpq::contained_in(&q1, &q2) {
            let world = prxview::peval::dp::max_world(&pdoc);
            let a1 = prxview::tpq::embed::eval(&q1, &world);
            let a2 = prxview::tpq::embed::eval(&q2, &world);
            for n in a1 {
                prop_assert!(a2.contains(&n), "containment violated at {}", n);
            }
        }
    }

    /// Syntactic c-independence ⇒ the probabilistic identity holds.
    #[test]
    fn cindep_soundness(pdoc in small_pdoc(), s1 in pattern_spec(), s2 in pattern_spec()) {
        let q1 = build_pattern(&s1);
        let q2 = build_pattern(&s2);
        prop_assume!(q1.len() + q2.len() <= 14);
        if prxview::rewrite::c_independent(&q1, &q2) {
            prop_assert!(
                prxview::rewrite::cindep::identity_holds_on(&pdoc, &q1, &q2, 1e-7),
                "syntactic test accepted a dependent pair: {} vs {}",
                q1, q2
            );
        }
    }

    /// Whenever TPrewrite accepts a view, the plan's answers equal direct
    /// evaluation.
    #[test]
    fn tp_rewriting_correct(pdoc in small_pdoc(), s1 in pattern_spec(), cut in 0..3usize) {
        let q = build_pattern(&s1);
        prop_assume!(q.mb_len() >= 2 && q.len() <= 10);
        // Use a prefix of q as the view.
        let k = 1 + (cut % q.mb_len().max(1));
        let view_pattern = q.prefix(k);
        let view = View::new("v", view_pattern);
        let views = [view.clone()];
        let accepted = prxview::rewrite::tp_rewrite(&q, &views);
        if let Some(rw) = accepted.into_iter().next() {
            let ext = prxview::rewrite::ProbExtension::materialize(&pdoc, &view);
            let got = prxview::rewrite::fr_tp::answer_tp(&rw, &ext);
            let want = prxview::peval::eval_tp(&pdoc, &q);
            prop_assert_eq!(got.len(), want.len(), "{} over {}", q, view.pattern);
            for ((n1, p1), (n2, p2)) in got.iter().zip(&want) {
                prop_assert_eq!(n1, n2);
                prop_assert!((p1 - p2).abs() < 1e-8, "{}: {} vs {}", q, p1, p2);
            }
        }
    }

    /// TP∩ evaluation over documents = union of interleavings' answers.
    #[test]
    fn interleavings_cover_intersection(pdoc in small_pdoc(), s1 in pattern_spec(), s2 in pattern_spec()) {
        let q1 = build_pattern(&s1);
        let q2 = build_pattern(&s2);
        prop_assume!(q1.mb_len() + q2.mb_len() <= 8);
        let inter = prxview::tpq::TpIntersection::new(vec![q1, q2]);
        if let Some(ils) = inter.interleavings(500) {
            let world = prxview::peval::dp::max_world(&pdoc);
            let direct = inter.eval(&world);
            let mut via: Vec<NodeId> = ils
                .iter()
                .flat_map(|i| prxview::tpq::embed::eval(i, &world))
                .collect();
            via.sort_unstable();
            via.dedup();
            prop_assert_eq!(direct, via);
        }
    }

    /// Sampling statistically agrees with enumerated node marginals.
    #[test]
    fn sampling_agrees_with_marginals(pdoc in small_pdoc(), seed in any::<u64>()) {
        use rand::SeedableRng;
        if let Some(space) = pdoc.px_space_limited(1 << 12) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Pick the first non-root ordinary node.
            if let Some(n) = pdoc.ordinary_ids().find(|&n| n != pdoc.root()) {
                let exact = space.node_marginal(n);
                let est = pdoc.estimate(&mut rng, 4_000, |d| d.contains(n));
                prop_assert!((est - exact).abs() < 0.06,
                    "marginal {} vs estimate {}", exact, est);
            }
        }
    }

    /// Containment is reflexive and transitive on generated patterns.
    #[test]
    fn containment_reflexive_and_transitive(s1 in pattern_spec(), s2 in pattern_spec(), s3 in pattern_spec()) {
        let a = build_pattern(&s1);
        let b = build_pattern(&s2);
        let c = build_pattern(&s3);
        prop_assert!(prxview::tpq::contained_in(&a, &a), "reflexivity: {}", a);
        if prxview::tpq::contained_in(&a, &b) && prxview::tpq::contained_in(&b, &c) {
            prop_assert!(
                prxview::tpq::contained_in(&a, &c),
                "transitivity: {} ⊑ {} ⊑ {}", a, b, c
            );
        }
    }

    /// `tpq::intersect` is commutative up to canonical form: the
    /// interleaving sets of q1 ∩ q2 and q2 ∩ q1 coincide as canonical-key
    /// sets, and when the intersection collapses to a single TP, the two
    /// orders produce equivalent patterns.
    #[test]
    fn intersection_commutative_up_to_canonical_form(s1 in pattern_spec(), s2 in pattern_spec()) {
        let q1 = build_pattern(&s1);
        let q2 = build_pattern(&s2);
        prop_assume!(q1.mb_len() + q2.mb_len() <= 8);
        let i12 = prxview::tpq::TpIntersection::new(vec![q1.clone(), q2.clone()]);
        let i21 = prxview::tpq::TpIntersection::new(vec![q2.clone(), q1.clone()]);
        if let (Some(a), Some(b)) = (i12.interleavings(400), i21.interleavings(400)) {
            let mut ka: Vec<String> = a.iter().map(|p| p.canonical_key()).collect();
            let mut kb: Vec<String> = b.iter().map(|p| p.canonical_key()).collect();
            ka.sort();
            ka.dedup();
            kb.sort();
            kb.dedup();
            prop_assert_eq!(ka, kb, "{} ∩ {}", q1, q2);
        }
        let t12 = prxview::tpq::intersect::intersect_to_tp(&q1, &q2, 400);
        let t21 = prxview::tpq::intersect::intersect_to_tp(&q2, &q1, 400);
        if let (Some(a), Some(b)) = (t12, t21) {
            prop_assert!(
                prxview::tpq::equivalent(&a, &b),
                "{} ∩ {}: {} vs {}", q1, q2, a, b
            );
        }
    }

    /// Interning round-trips: `intern(resolve(s)) == s` and
    /// `resolve(intern(name)) == name`.
    #[test]
    fn interning_round_trips(parts in prop::collection::vec(0..LABELS.len(), 1..5), salt in any::<u64>()) {
        use prxview::pxml::Symbol;
        let name = format!(
            "prop-{}-{}",
            parts.iter().map(|&i| LABELS[i]).collect::<Vec<_>>().join("_"),
            salt % 997
        );
        let s = Symbol::intern(&name);
        prop_assert_eq!(s.resolve(), name.as_str());
        prop_assert_eq!(Symbol::intern(s.resolve()), s);
        // And through the Label alias used by documents and patterns.
        prop_assert_eq!(Label::new(&name), s);
    }

    /// When S(q,V) solves for a view family, its fr equals direct
    /// evaluation at every answer node.
    #[test]
    fn system_fr_correct(pdoc in small_pdoc(), s in pattern_spec(), drop_mask in 0u8..8) {
        use prxview::rewrite::system::build_system;
        use prxview::rewrite::tpi_rewrite::VirtualView;
        let q = build_pattern(&s);
        prop_assume!(q.mb_len() >= 2 && q.len() <= 9 && q.len() > q.mb_len());
        // View family: per-main-branch-node predicate restrictions + mb(q).
        let mut patterns: Vec<TreePattern> = Vec::new();
        let mb = q.main_branch();
        for (i, &n) in mb.iter().enumerate() {
            if q.has_predicates(n) && (drop_mask >> (i % 8)) & 1 == 0 {
                patterns.push(q.filter_predicates(|m, _| m == n));
            }
        }
        patterns.push(q.main_branch_only());
        let sys = build_system(&q, &patterns);
        if sys.is_solvable() {
            let vviews: Vec<VirtualView> = patterns
                .iter()
                .enumerate()
                .map(|(i, pat)| {
                    let v = View::new(format!("v{i}"), pat.clone());
                    VirtualView::from_extension(
                        &prxview::rewrite::ProbExtension::materialize(&pdoc, &v),
                    )
                })
                .collect();
            let want = prxview::peval::eval_tp(&pdoc, &q);
            for (n, pw) in want {
                let got = sys.fr(&vviews, n);
                prop_assert!((got - pw).abs() < 1e-8,
                    "S(q,V) fr mismatch for {} at {}: {} vs {}", q, n, got, pw);
            }
        }
    }
}
