//! Update differential suite: random edit sequences over the randomized
//! workload. After every edit the incrementally-maintained engine must
//! answer **bit-identically** to a fresh engine parsed from the
//! post-edit document's *text* (so the differential also crosses the
//! display/parse round trip), while the maintained cache re-materializes
//! nothing and localized edits stay on the incremental path
//! (`delta_fallbacks < edits_applied`).

use prxview::engine::{DocId, Engine, Fallback, QueryOptions};
use prxview::pxml::edit::Edit;
use prxview::pxml::generators::{personnel, random_pdocument, RandomPDocConfig};
use prxview::pxml::text::parse_pdocument;
use prxview::pxml::{Label, NodeId, PKind};
use prxview::rewrite::View;
use prxview::tpq::generators::{random_pattern, RandomPatternConfig};
use prxview::tpq::TreePattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn p(s: &str) -> TreePattern {
    prxview::tpq::parse::parse_pattern(s).unwrap()
}

/// The randomized workload of `tests/snapshot.rs`: the paper's personnel
/// scenario plus random documents whose query prefixes form the catalog.
fn build_workload(seed: u64) -> (Engine, Vec<(DocId, TreePattern)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let doc_cfg = RandomPDocConfig {
        max_depth: 4,
        max_children: 3,
        dist_density: 0.5,
        target_size: 12,
        ..RandomPDocConfig::default()
    };
    let pat_cfg = RandomPatternConfig {
        mb_len: 2,
        preds_per_node: 0.6,
        pred_depth: 1,
        ..RandomPatternConfig::default()
    };
    let mut engine = Engine::new();
    let hr = engine.add_document("hr", personnel(12, 3, 9).0).unwrap();
    let mut docs = vec![hr];
    for i in 0..2 {
        let pdoc = random_pdocument(&doc_cfg, &mut rng);
        docs.push(engine.add_document(format!("d{i}"), pdoc).unwrap());
    }
    engine
        .register_views([
            View::new("v1BON", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("v2BON", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
    let mut workload: Vec<(DocId, TreePattern)> = Vec::new();
    for (i, q) in (0..4).map(|i| (i, random_pattern(&pat_cfg, &mut rng))) {
        for k in 1..=q.mb_len() {
            engine
                .register_view(View::new(format!("q{i}p{k}"), q.prefix(k)))
                .unwrap();
        }
        for &doc in &docs {
            workload.push((doc, q.clone()));
        }
    }
    for q in [
        "IT-personnel//person/bonus[laptop]",
        "IT-personnel//person/bonus[pda]",
        "IT-personnel//person/bonus",
        "IT-personnel//person[name/Rick]/bonus[laptop]",
    ] {
        workload.push((hr, p(q)));
    }
    (engine, workload)
}

/// Draws one structurally-valid random edit for `doc`, or `None` if this
/// draw found no valid site (the caller just draws again).
fn random_edit(engine: &Engine, doc: DocId, rng: &mut StdRng) -> Option<Edit> {
    let pdoc = engine.document(doc).unwrap();
    let mut ordinary: Vec<NodeId> = pdoc.ordinary_ids().collect();
    ordinary.sort();
    let pick = |rng: &mut StdRng, v: &[NodeId]| v[rng.gen_range(0..v.len())];
    match rng.gen_range(0..4u32) {
        // Relabel a random non-root ordinary node.
        0 => {
            let candidates: Vec<NodeId> = ordinary
                .iter()
                .copied()
                .filter(|&n| n != pdoc.root())
                .collect();
            let node = pick(rng, &candidates);
            let pool = ["edited", "laptop", "pda", "note", "zz"];
            Some(Edit::Relabel {
                node,
                label: Label::new(pool[rng.gen_range(0..pool.len())]),
            })
        }
        // Reweigh an edge under a mux/ind parent, respecting mux mass.
        1 => {
            let candidates: Vec<NodeId> = pdoc
                .node_ids()
                .filter(|&n| {
                    pdoc.parent(n)
                        .is_some_and(|par| matches!(pdoc.kind(par), PKind::Mux | PKind::Ind))
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let mut candidates = candidates;
            candidates.sort();
            let node = pick(rng, &candidates);
            let parent = pdoc.parent(node).unwrap();
            let ceiling = match pdoc.kind(parent) {
                PKind::Mux => {
                    let others: f64 = pdoc
                        .children(parent)
                        .iter()
                        .filter(|&&c| c != node)
                        .map(|&c| pdoc.child_prob(parent, c))
                        .sum();
                    (1.0 - others).max(0.0)
                }
                _ => 1.0,
            };
            Some(Edit::SetProb {
                node,
                prob: rng.gen_range(0.0..1.0) * ceiling,
            })
        }
        // Graft a small probabilistic subtree under an ordinary node.
        2 => {
            let parent = pick(rng, &ordinary);
            let pool = [
                "note[hi]",
                "bonus[mux(0.5: laptop, 0.25: pda)]",
                "person[name[Zoe], bonus[laptop]]",
            ];
            Some(Edit::InsertSubtree {
                parent,
                prob: 1.0,
                subtree: parse_pdocument(pool[rng.gen_range(0..pool.len())]).unwrap(),
            })
        }
        // Delete a subtree whose removal keeps the document valid.
        _ => {
            let candidates: Vec<NodeId> = pdoc
                .node_ids()
                .filter(|&n| {
                    pdoc.parent(n).is_some_and(|par| {
                        pdoc.kind(par).is_ordinary() || pdoc.children(par).len() > 1
                    })
                })
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let mut candidates = candidates;
            candidates.sort();
            Some(Edit::DeleteSubtree {
                node: pick(rng, &candidates),
            })
        }
    }
}

/// The tentpole differential: after every random edit, the live engine
/// (incremental maintenance, warm cache) agrees bit-for-bit with a fresh
/// engine parsed from the post-edit document text.
#[test]
fn random_edit_sequences_match_fresh_engines_bit_identically() {
    let (engine, workload) = build_workload(20260727);
    let opts = QueryOptions::new().fallback(Fallback::Direct);
    for name in ["hr", "d0", "d1"] {
        let doc = engine.find_document(name).unwrap();
        engine.warm(doc).unwrap();
    }
    let warm_mats = engine.stats().materializations;
    let doc_names = ["hr", "d0", "d1"];

    let mut rng = StdRng::seed_from_u64(7);
    let mut applied = 0usize;
    let mut compared = 0usize;
    while applied < 10 {
        let doc = engine
            .find_document(doc_names[rng.gen_range(0..doc_names.len())])
            .unwrap();
        let Some(edit) = random_edit(&engine, doc, &mut rng) else {
            continue;
        };
        if engine
            .apply_edits(doc, std::slice::from_ref(&edit))
            .is_err()
        {
            continue; // a rare structurally-rejected draw; nothing mutated
        }
        applied += 1;

        // Fresh engine parsed from the post-edit document *text* — the
        // differential crosses the display/parse round trip too.
        let mut cold = Engine::new();
        for name in &doc_names {
            let live = engine.find_document(name).unwrap();
            let text = engine.document(live).unwrap().to_string();
            cold.add_document(*name, parse_pdocument(&text).unwrap())
                .unwrap();
        }
        cold.register_views(engine.catalog().views().to_vec())
            .unwrap();

        for (i, (doc, q)) in workload.iter().enumerate() {
            let live = engine.answer_with(*doc, q, &opts).expect("fallback on");
            let want = cold.answer_with(*doc, q, &opts).expect("fallback on");
            assert_eq!(
                live.nodes, want.nodes,
                "edit {applied} ({edit}), query {i} ({q}): bit-identical answers"
            );
            assert_eq!(
                live.description, want.description,
                "edit {applied}, query {i}: same route"
            );
            compared += 1;
        }
    }
    assert!(compared >= 100, "the differential must actually compare");

    let stats = engine.stats();
    assert_eq!(stats.edits_applied, applied as u64);
    // The random catalog contains root-predicate views that legitimately
    // cannot localize; the incremental path must still dominate the
    // maintenance steps. (The strict `delta_fallbacks < edits` claim for
    // purely localized edits is asserted by the test below.)
    assert!(
        stats.deltas_applied > stats.delta_fallbacks,
        "incremental maintenance must dominate ({} deltas vs {} fallbacks)",
        stats.deltas_applied,
        stats.delta_fallbacks
    );
    assert_eq!(
        stats.materializations, warm_mats,
        "maintenance never re-materialized a cached extension"
    );
}

/// Localized edits on the personnel scenario: every maintenance step
/// stays incremental (zero fallbacks) and reuses most results, and the
/// post-edit snapshot still round-trips the maintained state through the
/// on-disk store.
#[test]
fn localized_edits_never_fall_back_and_snapshots_carry_them() {
    let mut engine = Engine::new();
    let doc = engine.add_document("hr", personnel(10, 3, 9).0).unwrap();
    engine
        .register_views([
            View::new("v1BON", p("IT-personnel//person[name/Rick]/bonus")),
            View::new("v2BON", p("IT-personnel//person/bonus")),
        ])
        .unwrap();
    engine.warm(doc).unwrap();

    // Edits inside single person subtrees: reweigh mux branches deep in
    // the tree.
    let mut rng = StdRng::seed_from_u64(11);
    let mut applied = 0;
    while applied < 6 {
        let Some(edit) = random_edit(&engine, doc, &mut rng) else {
            continue;
        };
        if !matches!(edit, Edit::SetProb { .. } | Edit::Relabel { .. }) {
            continue;
        }
        if engine
            .apply_edits(doc, std::slice::from_ref(&edit))
            .is_err()
        {
            continue;
        }
        applied += 1;
    }
    let stats = engine.stats();
    assert_eq!(stats.edits_applied, 6);
    assert!(
        stats.delta_fallbacks < stats.edits_applied,
        "localized edits keep fallbacks below the edit count"
    );
    assert_eq!(
        stats.delta_fallbacks, 0,
        "in-subtree edits localize for both personnel views"
    );
    assert_eq!(
        stats.deltas_applied, 12,
        "6 edits × 2 maintained extensions"
    );

    // Save → restore of the edited engine round-trips the post-edit
    // state: document, maintained extensions, and answers.
    let q = p("IT-personnel//person/bonus[laptop]");
    let want = engine.answer(doc, &q).unwrap();
    let path = std::env::temp_dir().join(format!("pxv-updates-{}.pxv", std::process::id()));
    engine.snapshot_to(&path).unwrap();
    let restored = Engine::restore_from(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let rd = restored.find_document("hr").unwrap();
    assert_eq!(
        restored.document(rd).unwrap().to_string(),
        engine.document(doc).unwrap().to_string(),
        "post-edit document round-trips the store"
    );
    let got = restored.answer(rd, &q).unwrap();
    assert_eq!(got.nodes, want.nodes, "bit-identical restored answers");
    assert_eq!(
        got.stats.materializations, 0,
        "maintained cache restored warm"
    );
}
