//! Budgeted-cache correctness: eviction is *purely* a caching decision.
//! A byte-starved engine answers bit-identically to an unbounded one
//! (differential), an evicted extension rematerializes bit-identically
//! on the next query, the byte gauge never exceeds the budget at any
//! quiesced checkpoint, the single-flight guarantee holds while
//! evictions race queries, and the bounded plan cache / query log never
//! grow past their caps.

use prxview::engine::{AdviseOptions, Engine, QueryOptions};
use prxview::pxml::generators::personnel;
use prxview::rewrite::View;
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;

fn p(s: &str) -> TreePattern {
    parse_pattern(s).unwrap()
}

fn views() -> Vec<View> {
    vec![
        View::new("bonuses", p("IT-personnel//person/bonus")),
        View::new("rick", p("IT-personnel//person[name/Rick]/bonus")),
    ]
}

fn query_mix() -> Vec<TreePattern> {
    vec![
        p("IT-personnel//person/bonus[laptop]"),
        p("IT-personnel//person/bonus[pda]"),
        p("IT-personnel//person[name/Rick]/bonus[laptop]"),
        p("IT-personnel//person/bonus"),
    ]
}

/// Engine with several documents so budget pressure has victims to
/// choose between.
fn multi_doc_engine(docs: usize) -> (Engine, Vec<prxview::engine::DocId>) {
    let mut engine = Engine::new();
    let ids = (0..docs)
        .map(|i| {
            let (pdoc, _) = personnel(20 + 4 * i, 3, 7 + i as u64);
            engine.add_document(format!("p{i}"), pdoc).unwrap()
        })
        .collect();
    engine.register_views(views()).unwrap();
    (engine, ids)
}

/// Differential: a budgeted engine must answer every query in the mix
/// bit-identically to an unbounded twin, no matter how hard the budget
/// squeezes — eviction may cost rematerializations, never correctness.
#[test]
fn budgeted_engine_is_bit_identical_to_unbounded() {
    let (unbounded, docs) = multi_doc_engine(4);
    let (budgeted, _) = multi_doc_engine(4);
    for &d in &docs {
        unbounded.warm(d).unwrap();
    }
    let full = unbounded.cache_bytes();
    assert!(full > 0, "warm cache is byte-accounted");

    // Roughly one document's worth of extensions fits at a time.
    let budget = full / 4;
    budgeted.set_cache_budget(budget);
    for round in 0..3 {
        for &d in &docs {
            for q in &query_mix() {
                let want = unbounded.answer(d, q).unwrap();
                let got = budgeted.answer(d, q).unwrap();
                assert_eq!(want.nodes.len(), got.nodes.len(), "round {round}: {q}");
                for ((n1, p1), (n2, p2)) in want.nodes.iter().zip(&got.nodes) {
                    assert_eq!(n1, n2, "round {round}: {q}");
                    assert_eq!(p1.to_bits(), p2.to_bits(), "round {round}: {q} node {n1}");
                }
            }
            // Quiesced checkpoint: the gauge obeys the budget.
            assert!(
                budgeted.cache_bytes() <= budget,
                "round {round}: {} > {budget}",
                budgeted.cache_bytes()
            );
        }
    }
    let stats = budgeted.stats();
    // Pressure resolves as an eviction (older victim) or an admission
    // reject (the new entry itself scored lowest — rebuild times are
    // measured, so which one is timing-dependent); either proves the
    // budget squeezed.
    assert!(
        stats.evictions + stats.admission_rejects > 0,
        "the budget actually squeezed"
    );
    assert!(
        stats.materializations > unbounded.stats().materializations,
        "eviction cost rematerializations, not answers"
    );
}

/// An evicted extension rematerializes bit-identically when its query
/// returns, and the eviction log records what was dropped and why.
#[test]
fn evicted_extension_rematerializes_bit_identically() {
    let (engine, docs) = multi_doc_engine(2);
    let q = p("IT-personnel//person/bonus[laptop]");
    let warm = engine.answer(docs[0], &q).unwrap();
    assert_eq!(engine.stats().materializations, 1);

    // Evict everything; the gauge drops to zero and the log says why.
    engine.set_cache_budget(1);
    assert!(engine.cache_bytes() <= 1);
    let log = engine.eviction_log();
    assert!(!log.is_empty());
    for record in &log {
        assert!(record.bytes > 0, "evicted entries were charged");
        assert!(record.score >= 0.0);
    }
    assert_eq!(engine.stats().evictions, log.len() as u64);

    // Unbounded again: the re-query rebuilds and answers identically.
    engine.set_cache_budget(u64::MAX);
    let cold = engine.answer(docs[0], &q).unwrap();
    assert_eq!(cold.stats.materializations, 1, "rebuilt after eviction");
    assert_eq!(cold.nodes.len(), warm.nodes.len());
    for ((n1, p1), (n2, p2)) in warm.nodes.iter().zip(&cold.nodes) {
        assert_eq!(n1, n2);
        assert_eq!(p1.to_bits(), p2.to_bits(), "node {n1}");
    }
}

/// A budget smaller than any single extension: every materialization is
/// admitted for the duration of its query, then immediately retired —
/// counted as an admission reject, with answers still correct.
#[test]
fn tiny_budget_rejects_admissions_but_answers() {
    let (engine, docs) = multi_doc_engine(1);
    engine.set_cache_budget(1);
    let q = p("IT-personnel//person/bonus[laptop]");
    let first = engine.answer(docs[0], &q).unwrap();
    let second = engine.answer(docs[0], &q).unwrap();
    assert_eq!(first.nodes, second.nodes);
    assert_eq!(second.stats.materializations, 1, "nothing stays resident");
    let stats = engine.stats();
    assert!(stats.cache_bytes <= 1);
    assert!(stats.admission_rejects > 0, "newest entry was the victim");
    assert!(engine.eviction_log().iter().any(|r| r.admission_reject));
}

/// Single-flight must hold while evictions race queries: threads hammer
/// the same queries while another thread flips the budget between tight
/// and unbounded. Every answer stays bit-identical to the reference and
/// the engine never deadlocks or double-charges the gauge (checked at
/// the quiesced end state).
#[test]
fn single_flight_holds_under_eviction_races() {
    let (engine, docs) = multi_doc_engine(2);
    let reference: Vec<_> = docs
        .iter()
        .flat_map(|&d| query_mix().into_iter().map(move |q| (d, q)))
        .map(|(d, q)| {
            let nodes = engine.answer(d, &q).unwrap().nodes;
            (d, q, nodes)
        })
        .collect();
    let full = engine.cache_bytes();
    assert!(full > 0);

    std::thread::scope(|scope| {
        for t in 0..4usize {
            let engine = &engine;
            let reference = &reference;
            scope.spawn(move || {
                for r in 0..30 {
                    let (d, q, want) = &reference[(t + r) % reference.len()];
                    let got = engine.answer(*d, q).unwrap();
                    assert_eq!(&got.nodes, want, "thread {t} round {r}: {q}");
                }
            });
        }
        // The antagonist: squeeze and release the budget concurrently.
        let engine = &engine;
        scope.spawn(move || {
            for r in 0..40 {
                engine.set_cache_budget(if r % 2 == 0 { full / 8 } else { u64::MAX });
                std::thread::yield_now();
            }
            engine.set_cache_budget(u64::MAX);
        });
    });

    // Quiesced: the gauge equals the sum of what is actually resident —
    // re-warming from here must only add bytes for what is missing.
    let resident = engine.cache_bytes();
    for &d in &docs {
        engine.warm(d).unwrap();
    }
    assert!(engine.cache_bytes() >= resident);
    assert!(engine.stats().evictions > 0, "the antagonist evicted");
    // And the answers are still right.
    for (d, q, want) in &reference {
        assert_eq!(&engine.answer(*d, q).unwrap().nodes, want, "{q}");
    }
}

/// The eviction log itself is bounded: a pathological workload that
/// churns the cache for thousands of rounds keeps only the most recent
/// [`EVICTION_LOG_CAPACITY`] records (oldest dropped), while the
/// lifetime counters keep the true totals — the log can never become
/// the memory leak it exists to explain.
#[test]
fn eviction_log_is_bounded_under_sustained_churn() {
    use prxview::engine::EVICTION_LOG_CAPACITY;
    let (engine, docs) = multi_doc_engine(1);
    engine.set_cache_budget(1);
    let q = p("IT-personnel//person/bonus[laptop]");
    let rounds = EVICTION_LOG_CAPACITY + 50;
    for _ in 0..rounds {
        engine.answer(docs[0], &q).unwrap();
    }
    let log = engine.eviction_log();
    assert_eq!(log.len(), EVICTION_LOG_CAPACITY, "ring keeps the cap");
    assert!(
        log.iter().all(|r| r.admission_reject),
        "budget=1 retires every materialization as an admission reject"
    );
    let stats = engine.stats();
    assert!(
        stats.evictions + stats.admission_rejects >= rounds as u64,
        "lifetime counters outlive the bounded log: {} + {} < {rounds}",
        stats.evictions,
        stats.admission_rejects
    );
}

/// The plan cache is bounded: filling it past capacity evicts the
/// least-recently-used plans, keeps hot plans warm, and never grows the
/// map past the configured cap.
#[test]
fn plan_cache_is_bounded_with_lru_eviction() {
    let (pdoc, _) = personnel(10, 2, 3);
    let mut engine = Engine::new();
    let doc = engine.add_document("p", pdoc).unwrap();
    engine.register_views(views()).unwrap();
    engine.set_plan_cache_capacity(8);
    assert_eq!(engine.plan_cache_capacity(), 8);

    // A hot plan, touched between every batch of fillers.
    let hot = p("IT-personnel//person/bonus[laptop]");
    engine.answer(doc, &hot).unwrap();
    for i in 0..40 {
        let filler = p(&format!("IT-personnel//person/bonus[gadget-{i}]"));
        engine.answer(doc, &filler).unwrap();
        engine.answer(doc, &hot).unwrap();
        assert!(
            engine.plan_cache_len() <= 8,
            "plan cache grew to {} entries",
            engine.plan_cache_len()
        );
    }
    // The hot plan was touched every round: still cached.
    let before = engine.stats().plan_cache_hits;
    engine.answer(doc, &hot).unwrap();
    assert_eq!(engine.stats().plan_cache_hits, before + 1, "hot plan kept");

    // A filler evicted long ago re-plans (cache miss), proving eviction
    // actually happened rather than the cap being ignored.
    let misses = engine.stats().plan_cache_misses;
    engine
        .answer(doc, &p("IT-personnel//person/bonus[gadget-0]"))
        .unwrap();
    assert!(engine.stats().plan_cache_misses > misses, "oldest evicted");

    // Shrinking the capacity evicts down immediately.
    engine.set_plan_cache_capacity(2);
    assert!(engine.plan_cache_len() <= 2);
}

/// The query log is a bounded ring: distinct keys never exceed the cap,
/// and the heaviest queries survive the churn.
#[test]
fn query_log_is_bounded_and_keeps_heavy_hitters() {
    let (pdoc, _) = personnel(6, 2, 5);
    let mut engine = Engine::new();
    let doc = engine.add_document("p", pdoc).unwrap();
    let heavy = p("IT-personnel//person/bonus");
    engine.record_query(doc, &heavy, 10_000).unwrap();
    for i in 0..2_000 {
        let q = p(&format!("IT-personnel//person/bonus[one-off-{i}]"));
        engine.record_query(doc, &q, 1).unwrap();
        // Keep the heavy hitter recent as real traffic would.
        engine.record_query(doc, &heavy, 1).unwrap();
    }
    let log = engine.query_log();
    assert!(log.len() <= 1024, "log has {} distinct entries", log.len());
    assert_eq!(
        log[0].pattern.canonical_key(),
        heavy.canonical_key(),
        "most-frequent first"
    );
    assert!(log[0].count >= 10_000);
    engine.clear_query_log();
    assert!(engine.query_log().is_empty());
    // Unknown documents are typed errors, not silent drops (a DocId
    // from a bigger engine does not exist in this one).
    let (_, foreign) = multi_doc_engine(2);
    assert!(engine.record_query(foreign[1], &heavy, 1).is_err());
}

/// Budget and per-entry scores survive a snapshot round trip: the
/// restored engine reports the same budget, the same byte gauge, and —
/// because heap accounting is deterministic — restore never evicts what
/// the saved engine kept.
#[test]
fn snapshot_round_trips_budget_and_scores() {
    let (engine, docs) = multi_doc_engine(2);
    for &d in &docs {
        engine.warm(d).unwrap();
    }
    // Accrue hits so the scores are non-trivial.
    for q in &query_mix() {
        engine.answer(docs[0], q).unwrap();
    }
    let budget = engine.cache_bytes() + 1024;
    engine.set_cache_budget(budget);
    let bytes_before = engine.cache_bytes();

    let restored = Engine::from_snapshot(engine.snapshot()).unwrap();
    assert_eq!(restored.cache_budget(), budget);
    assert_eq!(
        restored.cache_bytes(),
        bytes_before,
        "deterministic accounting: restore re-reports identical bytes"
    );
    assert_eq!(restored.stats().evictions, 0, "restore never evicts");
    // Warm restore answers bit-identically with zero materializations.
    for &d in &docs {
        for q in &query_mix() {
            let want = engine.answer(d, q).unwrap();
            let got = restored.answer(d, q).unwrap();
            assert_eq!(got.stats.materializations, 0, "warm restore: {q}");
            assert_eq!(want.nodes.len(), got.nodes.len());
            for ((n1, p1), (n2, p2)) in want.nodes.iter().zip(&got.nodes) {
                assert_eq!(n1, n2);
                assert_eq!(p1.to_bits(), p2.to_bits(), "{q} node {n1}");
            }
        }
    }
}

/// The advisor reads the engine's own query log: answering queries the
/// catalog cannot serve makes the advisor propose a covering view, and
/// `advise_and_register` makes the next identical query plannable.
#[test]
fn advisor_proposes_views_for_unserved_workload() {
    let (pdoc, _) = personnel(15, 3, 21);
    let mut engine = Engine::new();
    let doc = engine.add_document("p", pdoc).unwrap();
    engine.register_views(views()).unwrap();
    let unserved = p("IT-personnel//person/name");
    let direct = engine
        .answer_with(
            doc,
            &unserved,
            &QueryOptions::default().fallback(prxview::engine::Fallback::Direct),
        )
        .unwrap();
    assert!(!direct.nodes.is_empty());

    let report = engine.advise(&AdviseOptions::default());
    assert!(report.logged >= 1);
    assert!(report.coverage() >= 1, "{}", report.describe());
    let (report, registered) = engine
        .advise_and_register(&AdviseOptions::default())
        .unwrap();
    assert!(!registered.is_empty(), "{}", report.describe());
    // Now plannable without fallback, and bit-identical to direct.
    let via_view = engine.answer(doc, &unserved).unwrap();
    assert_eq!(via_view.nodes.len(), direct.nodes.len());
    for ((n1, p1), (n2, p2)) in direct.nodes.iter().zip(&via_view.nodes) {
        assert_eq!(n1, n2);
        assert_eq!(p1.to_bits(), p2.to_bits(), "node {n1}");
    }
}
