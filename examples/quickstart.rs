//! Quickstart: build a p-document, register it and a view with the
//! engine, answer a query from the materialized view only.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use prxview::engine::Engine;
use prxview::pxml::text::parse_pdocument;
use prxview::rewrite::View;
use prxview::tpq::parse::parse_pattern;

fn main() {
    // A probabilistic XML document: one person whose name is uncertain
    // (information-extraction style) and whose laptop bonus may be missing.
    let pdoc = parse_pdocument(
        "IT-personnel[person[name[mux(0.75: Rick, 0.25: John)], \
         bonus[mux(0.9: laptop[44, 50], 0.1: pda[25]), pda[50]]]]",
    )
    .expect("valid p-document");
    println!("p-document ({} nodes):\n  {}\n", pdoc.len(), pdoc);

    // The query: bonuses coming from the laptop project.
    let q = parse_pattern("IT-personnel//person/bonus[laptop]").unwrap();

    // The engine owns the document and a catalog with one view.
    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).expect("valid doc");
    let view = View::new(
        "bonuses",
        parse_pattern("IT-personnel//person/bonus").unwrap(),
    );
    println!("query:  {q}");
    println!("view :  {} := {}\n", view.name, view.pattern);
    engine.register_view(view).expect("unique name");

    // Answer using the view only (the paper's probabilistic rewriting).
    // The first query materializes the extension; it stays cached.
    let answer = engine.answer(doc, &q).expect("a rewriting exists");
    println!("plan :  {}", answer.description);
    for (n, p) in &answer.nodes {
        println!("answer: node {n} with probability {p:.4}");
    }
    println!(
        "stats:  {} extension materialized, {} candidates considered",
        answer.stats.materializations, answer.stats.candidates
    );

    // Ask again: the warm catalog serves the extension from cache.
    let again = engine.answer(doc, &q).expect("same plan");
    assert_eq!(again.stats.materializations, 0);
    assert_eq!(again.stats.cache_hits, 1);
    println!("again:  0 new materializations (cache hit) ✓");

    // Cross-check against direct evaluation over the p-document.
    let direct = engine.answer_direct(doc, &q).unwrap();
    assert_eq!(answer.nodes.len(), direct.nodes.len());
    for ((n1, p1), (n2, p2)) in answer.nodes.iter().zip(&direct.nodes) {
        assert_eq!(n1, n2);
        assert!((p1 - p2).abs() < 1e-9);
    }
    println!("\ndirect evaluation agrees ✓");
}
