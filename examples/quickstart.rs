//! Quickstart: build a p-document, define a view, answer a query from the
//! materialized view only.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use prxview::pxml::text::parse_pdocument;
use prxview::rewrite::{answer_direct, answer_with_views, View};
use prxview::tpq::parse::parse_pattern;

fn main() {
    // A probabilistic XML document: one person whose name is uncertain
    // (information-extraction style) and whose laptop bonus may be missing.
    let pdoc = parse_pdocument(
        "IT-personnel[person[name[mux(0.75: Rick, 0.25: John)], \
         bonus[mux(0.9: laptop[44, 50], 0.1: pda[25]), pda[50]]]]",
    )
    .expect("valid p-document");
    println!("p-document ({} nodes):\n  {}\n", pdoc.len(), pdoc);

    // The query: bonuses coming from the laptop project.
    let q = parse_pattern("IT-personnel//person/bonus[laptop]").unwrap();
    // The materialized view: all bonuses.
    let view = View::new("bonuses", parse_pattern("IT-personnel//person/bonus").unwrap());
    println!("query:  {q}");
    println!("view :  {} := {}\n", view.name, view.pattern);

    // Answer using the view only (the paper's probabilistic rewriting).
    let (plan, answers) =
        answer_with_views(&pdoc, &q, std::slice::from_ref(&view)).expect("a rewriting exists");
    println!("plan :  {}", plan.describe(std::slice::from_ref(&view)));
    for (n, p) in &answers {
        println!("answer: node {n} with probability {p:.4}");
    }

    // Cross-check against direct evaluation over the p-document.
    let direct = answer_direct(&pdoc, &q);
    assert_eq!(answers.len(), direct.len());
    for ((n1, p1), (n2, p2)) in answers.iter().zip(&direct) {
        assert_eq!(n1, n2);
        assert!((p1 - p2).abs() < 1e-9);
    }
    println!("\ndirect evaluation agrees ✓");
}
