//! The paper's running example as a query-cache scenario, at scale.
//!
//! A probabilistic personnel database answers bonus queries from a
//! materialized `bonuses` view (single-view TP plans, §4) and from pairs
//! of partial views by intersection (TP∩ plans, §5). The engine's catalog
//! pays each view's materialization once; every further query over the
//! warm catalog touches only cached extensions — the timings below show
//! the amortization directly, and the engine's stats prove no extension
//! is rebuilt.
//!
//! ```sh
//! cargo run --release --example personnel_cache
//! ```

use prxview::engine::{Engine, EngineError};
use prxview::pxml::generators::personnel;
use prxview::rewrite::{Plan, View};
use prxview::tpq::parse::parse_pattern;
use std::time::Instant;

fn main() {
    let (pdoc, _bonus_nodes) = personnel(200, 3, 42);
    println!(
        "personnel p-document: {} nodes ({} distributional)\n",
        pdoc.len(),
        pdoc.distributional_count()
    );

    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).expect("valid doc");
    engine
        .register_views([
            View::new(
                "bonuses",
                parse_pattern("IT-personnel//person/bonus").unwrap(),
            ),
            View::new(
                "rick",
                parse_pattern("IT-personnel//person[name/Rick]/bonus").unwrap(),
            ),
        ])
        .expect("unique names");
    for v in engine.catalog().views() {
        println!("registered view {:8} := {}", v.name, v.pattern);
    }
    println!();

    let queries = [
        ("laptop bonuses", "IT-personnel//person/bonus[laptop]"),
        ("pda bonus values", "IT-personnel//person/bonus/pda"),
        ("Rick's bonuses", "IT-personnel//person[name/Rick]/bonus"),
        (
            "Rick's tablet bonuses",
            "IT-personnel//person[name/Rick]/bonus[tablet]",
        ),
    ];
    for (label, qs) in queries {
        let q = parse_pattern(qs).unwrap();
        let t0 = Instant::now();
        let direct = engine.answer_direct(doc, &q).unwrap();
        let t_direct = t0.elapsed();

        match engine.answer(doc, &q) {
            Err(EngineError::Plan(e)) => println!("{label}: {e}"),
            Err(e) => panic!("{label}: {e}"),
            Ok(cold) => {
                // The cold call may have materialized extensions; a second
                // call times the answering phase alone on the warm catalog.
                let t1 = Instant::now();
                let warm = engine.answer(doc, &q).unwrap();
                let t_views = t1.elapsed();
                assert_eq!(
                    warm.stats.materializations, 0,
                    "{label}: warm catalog must not re-materialize"
                );
                let kind = match warm.plan.as_ref().expect("from views") {
                    Plan::Tp(_) => "TP",
                    Plan::Tpi(_) => "TP∩",
                };
                println!(
                    "{label}: {} answers via {kind} plan (direct {:?}, warm-cache {:?}, \
                     cold materialized {} ext)",
                    warm.nodes.len(),
                    t_direct,
                    t_views,
                    cold.stats.materializations,
                );
                assert_eq!(
                    warm.nodes.len(),
                    direct.nodes.len(),
                    "{label}: node set mismatch"
                );
                for ((n1, p1), (n2, p2)) in warm.nodes.iter().zip(&direct.nodes) {
                    assert_eq!(n1, n2);
                    assert!((p1 - p2).abs() < 1e-9, "{label} at {n1}: {p1} vs {p2}");
                }
                // Show the three most uncertain answers.
                let mut sorted = warm.nodes.clone();
                sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                for (n, p) in sorted.iter().take(3) {
                    println!("    e.g. node {n} with probability {p:.4}");
                }
            }
        }
    }

    let stats = engine.stats();
    println!(
        "\nengine lifetime: {} queries, {} TP plans, {} TP∩ plans, \
         {} materializations, {} cache hits",
        stats.queries, stats.plans_tp, stats.plans_tpi, stats.materializations, stats.cache_hits
    );
    assert!(
        stats.materializations <= engine.catalog().len() as u64,
        "each view materialized at most once"
    );
    println!("all plans agree with direct evaluation ✓");
}
