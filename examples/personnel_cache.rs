//! The paper's running example as a query-cache scenario, at scale.
//!
//! A probabilistic personnel database answers bonus queries from a
//! materialized `bonuses` view (single-view TP plans, §4) and from pairs
//! of partial views by intersection (TP∩ plans, §5), comparing cost and
//! results with direct evaluation over the original p-document.
//!
//! ```sh
//! cargo run --release --example personnel_cache
//! ```

use prxview::pxml::generators::personnel;
use prxview::rewrite::{answer_direct, answer_with_views, Plan, View};
use prxview::tpq::parse::parse_pattern;
use std::time::Instant;

fn main() {
    let (pdoc, _bonus_nodes) = personnel(200, 3, 42);
    println!(
        "personnel p-document: {} nodes ({} distributional)\n",
        pdoc.len(),
        pdoc.distributional_count()
    );

    let queries = [
        ("laptop bonuses", "IT-personnel//person/bonus[laptop]"),
        ("pda bonus values", "IT-personnel//person/bonus/pda"),
        ("Rick's bonuses", "IT-personnel//person[name/Rick]/bonus"),
        (
            "Rick's tablet bonuses",
            "IT-personnel//person[name/Rick]/bonus[tablet]",
        ),
    ];
    let views = vec![
        View::new("bonuses", parse_pattern("IT-personnel//person/bonus").unwrap()),
        View::new(
            "rick",
            parse_pattern("IT-personnel//person[name/Rick]/bonus").unwrap(),
        ),
    ];
    for v in &views {
        println!("materialized view {:8} := {}", v.name, v.pattern);
    }
    println!();

    for (label, qs) in queries {
        let q = parse_pattern(qs).unwrap();
        let t0 = Instant::now();
        let direct = answer_direct(&pdoc, &q);
        let t_direct = t0.elapsed();

        match answer_with_views(&pdoc, &q, &views) {
            None => println!("{label}: no probabilistic rewriting over these views"),
            Some((plan, answers)) => {
                // Timing of the answering phase alone (plan + fr over
                // extensions), with extensions considered pre-materialized.
                let t1 = Instant::now();
                let _ = answer_with_views(&pdoc, &q, &views);
                let t_views = t1.elapsed();
                let kind = match plan {
                    Plan::Tp(_) => "TP",
                    Plan::Tpi(_) => "TP∩",
                };
                println!(
                    "{label}: {} answers via {kind} plan (direct {:?}, via views {:?})",
                    answers.len(),
                    t_direct,
                    t_views
                );
                assert_eq!(answers.len(), direct.len(), "{label}: node set mismatch");
                for ((n1, p1), (n2, p2)) in answers.iter().zip(&direct) {
                    assert_eq!(n1, n2);
                    assert!((p1 - p2).abs() < 1e-9, "{label} at {n1}: {p1} vs {p2}");
                }
                // Show the three most uncertain answers.
                let mut sorted = answers.clone();
                sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                for (n, p) in sorted.iter().take(3) {
                    println!("    e.g. node {n} with probability {p:.4}");
                }
            }
        }
    }
    println!("\nall plans agree with direct evaluation ✓");
}
