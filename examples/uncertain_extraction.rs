//! Web information extraction scenario (the paper's §1 motivation):
//! extractors emit product records with confidences; the resulting
//! probabilistic XML is queried through materialized views.
//!
//! The interesting query places predicates on *two different ancestors* of
//! the answer node (`product[brand/acme]` and `listing[rating/good]` above
//! `offer`), so no single view can answer it — the engine builds a TP∩
//! plan intersecting two one-aspect views by persistent node identity and
//! recovers probabilities through the `S(q,V)` system (Theorem 5), with
//! the appearance probability from a predicate-free view (Lemma 3). The
//! plan references all three views and the engine materializes exactly
//! those — no more.
//!
//! ```sh
//! cargo run --example uncertain_extraction
//! ```

use prxview::engine::{Engine, EngineError, PlanPreference, QueryOptions};
use prxview::pxml::{Label, PDocument, PKind};
use prxview::rewrite::{Plan, View};
use prxview::tpq::parse::parse_pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a catalog where each product's brand and each listing's rating
/// were produced by different extractors with per-field confidences, and
/// offers themselves may be spurious.
fn extracted_catalog(n_products: usize, seed: u64) -> PDocument {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pdoc = PDocument::new(Label::new("catalog"));
    let brands = ["acme", "globex", "initech"];
    for i in 0..n_products {
        let prod = pdoc.add_ordinary(pdoc.root(), Label::new("product"), 1.0);
        // Brand extractor: confidence-weighted alternatives.
        let brand = pdoc.add_ordinary(prod, Label::new("brand"), 1.0);
        let mux = pdoc.add_dist(brand, PKind::Mux, 1.0);
        let conf = rng.gen_range(0.55..0.95);
        pdoc.add_ordinary(mux, Label::new(brands[i % 3]), conf);
        pdoc.add_ordinary(mux, Label::new(brands[(i + 1) % 3]), 1.0 - conf);
        // Listings with uncertain ratings and possibly-spurious offers.
        for _ in 0..rng.gen_range(1..=2usize) {
            let listing = pdoc.add_ordinary(prod, Label::new("listing"), 1.0);
            let ind = pdoc.add_dist(listing, PKind::Ind, 1.0);
            let rating = pdoc.add_ordinary(ind, Label::new("rating"), rng.gen_range(0.5..0.99));
            let stars = if rng.gen_bool(0.5) { "good" } else { "poor" };
            pdoc.add_ordinary(rating, Label::new(stars), 1.0);
            let omux = pdoc.add_dist(listing, PKind::Mux, 1.0);
            let offer = pdoc.add_ordinary(omux, Label::new("offer"), rng.gen_range(0.6..1.0));
            pdoc.add_ordinary(
                offer,
                Label::new(&format!("{}", rng.gen_range(10..99))),
                1.0,
            );
        }
    }
    pdoc
}

fn main() {
    let mut engine = Engine::new();
    let doc = engine
        .add_document("catalog", extracted_catalog(40, 7))
        .expect("valid doc");
    {
        let pdoc = engine.document(doc).unwrap();
        println!(
            "extracted catalog: {} nodes, {} distributional\n",
            pdoc.len(),
            pdoc.distributional_count()
        );
    }

    // Offers of acme products with good ratings: predicates on two
    // different ancestors of the answer node.
    let q = parse_pattern("catalog/product[brand/acme]/listing[rating/good]/offer").unwrap();
    engine
        .register_views([
            View::new(
                "acme",
                parse_pattern("catalog/product[brand/acme]/listing/offer").unwrap(),
            ),
            View::new(
                "liked",
                parse_pattern("catalog/product/listing[rating/good]/offer").unwrap(),
            ),
            View::new(
                "all",
                parse_pattern("catalog/product/listing/offer").unwrap(),
            ),
        ])
        .expect("unique names");
    println!("query: {q}");
    for v in engine.catalog().views() {
        println!("view {:6} := {}", v.name, v.pattern);
    }

    // No single-view plan: each view misses one aspect.
    let tp_only = QueryOptions::new().plan_preference(PlanPreference::TpOnly);
    assert!(matches!(
        engine.plan_with(&q, &tp_only),
        Err(EngineError::Plan(_))
    ));

    let answer = engine.answer(doc, &q).expect("TP∩ plan exists");
    assert!(matches!(answer.plan, Some(Plan::Tpi(_))));
    println!("\nplan: {}\n", answer.description);
    println!(
        "execution touched {} extensions ({} materialized, {} candidates)",
        answer.stats.extensions_touched, answer.stats.materializations, answer.stats.candidates
    );
    println!("{} matching offers:", answer.nodes.len());
    for (n, p) in answer.nodes.iter().take(8) {
        println!("  offer node {n}: probability {p:.4}");
    }
    if answer.nodes.len() > 8 {
        println!("  … and {} more", answer.nodes.len() - 8);
    }

    // Validate against direct evaluation.
    let direct = engine.answer_direct(doc, &q).unwrap();
    assert_eq!(direct.nodes.len(), answer.nodes.len());
    for ((n1, p1), (n2, p2)) in answer.nodes.iter().zip(&direct.nodes) {
        assert_eq!(n1, n2);
        assert!((p1 - p2).abs() < 1e-9);
    }
    println!("\ndirect evaluation agrees ✓");

    // Without the appearance view the probabilities are not recoverable
    // (Lemma 3): the two aspect views over-count Pr(n ∈ P). A fresh engine
    // with only the two aspect views must refuse.
    let mut partial = Engine::new();
    let pdoc = (*engine.document(doc).unwrap()).clone();
    let pdoc_id = partial.add_document("catalog", pdoc).unwrap();
    partial
        .register_views([
            View::new(
                "acme",
                parse_pattern("catalog/product[brand/acme]/listing/offer").unwrap(),
            ),
            View::new(
                "liked",
                parse_pattern("catalog/product/listing[rating/good]/offer").unwrap(),
            ),
        ])
        .unwrap();
    match partial.answer(pdoc_id, &q) {
        Err(EngineError::Plan(e)) => {
            println!("without the `all` view: {e} (Lemma 3) ✓")
        }
        Err(e) => panic!("unexpected engine error: {e}"),
        Ok(a) => panic!("Lemma 3 should forbid this: {}", a.description),
    }
}
