//! Web information extraction scenario (the paper's §1 motivation):
//! extractors emit product records with confidences; the resulting
//! probabilistic XML is queried through materialized views.
//!
//! The interesting query places predicates on *two different ancestors* of
//! the answer node (`product[brand/acme]` and `listing[rating/good]` above
//! `offer`), so no single view can answer it — the planner builds a TP∩
//! plan intersecting two one-aspect views by persistent node identity and
//! recovers probabilities through the `S(q,V)` system (Theorem 5), with
//! the appearance probability from a predicate-free view (Lemma 3).
//!
//! ```sh
//! cargo run --example uncertain_extraction
//! ```

use prxview::pxml::{Label, PDocument, PKind};
use prxview::rewrite::{answer_direct, answer_with_views, Plan, View};
use prxview::tpq::parse::parse_pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a catalog where each product's brand and each listing's rating
/// were produced by different extractors with per-field confidences, and
/// offers themselves may be spurious.
fn extracted_catalog(n_products: usize, seed: u64) -> PDocument {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pdoc = PDocument::new(Label::new("catalog"));
    let brands = ["acme", "globex", "initech"];
    for i in 0..n_products {
        let prod = pdoc.add_ordinary(pdoc.root(), Label::new("product"), 1.0);
        // Brand extractor: confidence-weighted alternatives.
        let brand = pdoc.add_ordinary(prod, Label::new("brand"), 1.0);
        let mux = pdoc.add_dist(brand, PKind::Mux, 1.0);
        let conf = rng.gen_range(0.55..0.95);
        pdoc.add_ordinary(mux, Label::new(brands[i % 3]), conf);
        pdoc.add_ordinary(mux, Label::new(brands[(i + 1) % 3]), 1.0 - conf);
        // Listings with uncertain ratings and possibly-spurious offers.
        for _ in 0..rng.gen_range(1..=2usize) {
            let listing = pdoc.add_ordinary(prod, Label::new("listing"), 1.0);
            let ind = pdoc.add_dist(listing, PKind::Ind, 1.0);
            let rating =
                pdoc.add_ordinary(ind, Label::new("rating"), rng.gen_range(0.5..0.99));
            let stars = if rng.gen_bool(0.5) { "good" } else { "poor" };
            pdoc.add_ordinary(rating, Label::new(stars), 1.0);
            let omux = pdoc.add_dist(listing, PKind::Mux, 1.0);
            let offer = pdoc.add_ordinary(omux, Label::new("offer"), rng.gen_range(0.6..1.0));
            pdoc.add_ordinary(offer, Label::new(&format!("{}", rng.gen_range(10..99))), 1.0);
        }
    }
    pdoc
}

fn main() {
    let pdoc = extracted_catalog(40, 7);
    println!(
        "extracted catalog: {} nodes, {} distributional\n",
        pdoc.len(),
        pdoc.distributional_count()
    );

    // Offers of acme products with good ratings: predicates on two
    // different ancestors of the answer node.
    let q = parse_pattern("catalog/product[brand/acme]/listing[rating/good]/offer").unwrap();
    let views = vec![
        View::new(
            "acme",
            parse_pattern("catalog/product[brand/acme]/listing/offer").unwrap(),
        ),
        View::new(
            "liked",
            parse_pattern("catalog/product/listing[rating/good]/offer").unwrap(),
        ),
        View::new("all", parse_pattern("catalog/product/listing/offer").unwrap()),
    ];
    println!("query: {q}");
    for v in &views {
        println!("view {:6} := {}", v.name, v.pattern);
    }

    // No single-view plan: each view misses one aspect.
    assert!(prxview::rewrite::tp_rewrite(&q, &views).is_empty());

    let (plan, answers) = answer_with_views(&pdoc, &q, &views).expect("TP∩ plan exists");
    assert!(matches!(plan, Plan::Tpi(_)));
    println!("\nplan: {}\n", plan.describe(&views));
    println!("{} matching offers:", answers.len());
    for (n, p) in answers.iter().take(8) {
        println!("  offer node {n}: probability {p:.4}");
    }
    if answers.len() > 8 {
        println!("  … and {} more", answers.len() - 8);
    }

    // Validate against direct evaluation.
    let direct = answer_direct(&pdoc, &q);
    assert_eq!(direct.len(), answers.len());
    for ((n1, p1), (n2, p2)) in answers.iter().zip(&direct) {
        assert_eq!(n1, n2);
        assert!((p1 - p2).abs() < 1e-9);
    }
    println!("\ndirect evaluation agrees ✓");

    // Without the appearance view the probabilities are not recoverable
    // (Lemma 3): the two aspect views over-count Pr(n ∈ P).
    let partial = &views[..2];
    match answer_with_views(&pdoc, &q, partial) {
        None => println!("without the `all` view: no probabilistic rewriting (Lemma 3) ✓"),
        Some((pl, _)) => panic!("Lemma 3 should forbid this: {}", pl.describe(partial)),
    }
}
