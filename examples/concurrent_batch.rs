//! Concurrent batch answering against a shared sharded catalog.
//!
//! A worker pool answers a mixed bonus-query workload through
//! `Engine::answer_batch_with` at increasing thread counts. The first
//! (cold) batch lets eight threads race for the same two extensions:
//! single-flight materialization guarantees each is built exactly once,
//! observable through the engine's lifetime stats. Warm batches then only
//! take shard read locks, so throughput scales with cores (on a
//! single-core container every row is about the same — answers are still
//! bit-identical at every thread count, which this example asserts).
//!
//! ```sh
//! cargo run --release --example concurrent_batch
//! ```

use prxview::engine::Engine;
use prxview::pxml::generators::personnel;
use prxview::rewrite::View;
use prxview::tpq::parse::parse_pattern;
use prxview::tpq::TreePattern;
use std::time::Instant;

fn pat(s: &str) -> TreePattern {
    parse_pattern(s).expect("example pattern parses")
}

fn main() {
    let (pdoc, _) = personnel(120, 3, 42);
    println!(
        "personnel p-document: {} nodes ({} distributional)",
        pdoc.len(),
        pdoc.distributional_count()
    );

    let mut engine = Engine::new();
    let doc = engine.add_document("personnel", pdoc).expect("valid doc");
    engine
        .register_views([
            View::new("bonuses", pat("IT-personnel//person/bonus")),
            View::new("rick", pat("IT-personnel//person[name/Rick]/bonus")),
        ])
        .expect("fresh names");

    // A mixed workload: every query plans onto one of the two views.
    let variants = [
        "IT-personnel//person/bonus[laptop]",
        "IT-personnel//person/bonus[pda]",
        "IT-personnel//person/bonus[tablet]",
        "IT-personnel//person[name/Rick]/bonus[laptop]",
    ];
    let batch: Vec<_> = (0..64)
        .map(|i| (doc, pat(variants[i % variants.len()])))
        .collect();

    // Cold batch: 8 threads race for 2 extensions; single-flight means
    // exactly 2 materializations, everyone else shares the result.
    let t0 = Instant::now();
    let cold = engine.answer_batch_with(&batch, engine.options(), 8);
    let cold_dt = t0.elapsed();
    assert!(cold.iter().all(|r| r.is_ok()));
    let stats = engine.stats();
    println!(
        "\ncold batch (8 threads): {} queries in {:.1} ms — {} materializations \
         (single-flight), {} cache hits",
        batch.len(),
        cold_dt.as_secs_f64() * 1e3,
        stats.materializations,
        stats.cache_hits,
    );
    assert_eq!(stats.materializations, 2, "one per referenced view, ever");

    // Warm batches at growing thread counts: identical answers, no new
    // materializations, throughput bounded only by cores.
    let baseline: Vec<_> = cold.into_iter().map(|r| r.unwrap().nodes).collect();
    println!("\nwarm batch throughput:");
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let results = engine.answer_batch_with(&batch, engine.options(), threads);
        let dt = t0.elapsed();
        for (got, want) in results.iter().zip(&baseline) {
            assert_eq!(
                &got.as_ref().expect("warm answer").nodes,
                want,
                "answers must be identical at every thread count"
            );
        }
        println!(
            "  threads={threads}: {:7.1} ms  ({:.0} queries/sec)",
            dt.as_secs_f64() * 1e3,
            batch.len() as f64 / dt.as_secs_f64()
        );
    }
    assert_eq!(
        engine.stats().materializations,
        2,
        "warm batches never re-materialize"
    );
    println!("\nall thread counts returned bit-identical answers ✓");
}
