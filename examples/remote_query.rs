//! End-to-end tour of the serving layer, self-contained in one process:
//! starts `prxd` on an ephemeral port, provisions the paper's running
//! example over the wire (LOAD → VIEW → WARM), answers queries through
//! the blocking client, and shows that remote answers are bit-identical
//! to in-process `Engine::answer` results.
//!
//! ```sh
//! cargo run --release --example remote_query
//! ```
//!
//! Against a standalone server the client half is the same — run
//! `prxview serve --port 7878` in one terminal and point
//! `Client::connect("127.0.0.1:7878")` at it.

use prxview::engine::Engine;
use prxview::pxml::text::parse_pdocument;
use prxview::rewrite::View;
use prxview::server::client::Client;
use prxview::server::serve::{serve, ServerConfig};
use prxview::tpq::parse::parse_pattern;

const PPER: &str = "IT-personnel[person[name[mux(0.75: Rick, 0.25: John)], \
                    bonus[mux(0.9: laptop, 0.1: pda)]], \
                    person[name[Mary], bonus[mux(0.5: tablet, 0.5: pda)]]]";

fn main() {
    // A server around an empty engine, on an ephemeral loopback port.
    let handle = serve(
        Engine::new(),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    println!("prxd listening on {}", handle.addr());

    // Provision everything over the wire: the display forms round-trip,
    // so the server's document is exactly the one we parsed here.
    let pdoc = parse_pdocument(PPER).unwrap();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.load("pper", &pdoc).unwrap();
    client
        .view_text("bonuses", "IT-personnel//person/bonus")
        .unwrap();
    println!("warmed {} extension(s)", client.warm("pper").unwrap());

    // Remote answers…
    let q = parse_pattern("IT-personnel//person/bonus[laptop]").unwrap();
    let remote = client.query("pper", &q).unwrap();
    println!("\nQUERY pper {q}");
    for (n, p) in &remote.nodes {
        println!("  {n}\t{p:.9}");
    }
    println!("  route: {}", remote.plan);
    println!(
        "  stats: {} extension(s) touched, {} cache hit(s), {} materialization(s)",
        remote.stats.extensions_touched, remote.stats.cache_hits, remote.stats.materializations
    );

    // …are bit-identical to in-process answers over the same state.
    let mut local = Engine::new();
    let doc = local.add_document("pper", pdoc).unwrap();
    local
        .register_view(View::new(
            "bonuses",
            parse_pattern("IT-personnel//person/bonus").unwrap(),
        ))
        .unwrap();
    let direct = local.answer(doc, &q).unwrap();
    assert_eq!(remote.nodes, direct.nodes, "wire answers are exact");
    println!(
        "\nremote ≡ local: {} node(s), every f64 bit equal",
        remote.nodes.len()
    );

    // A batch, answered concurrently on the server.
    let batch: Vec<(String, _)> = [
        "IT-personnel//person/bonus[pda]",
        "IT-personnel//person/bonus[tablet]",
        "IT-personnel//person[name/Rick]/bonus",
    ]
    .iter()
    .map(|s| ("pper".to_string(), parse_pattern(s).unwrap()))
    .collect();
    println!("\nBATCH {}", batch.len());
    for ((_, q), result) in batch.iter().zip(client.batch(&batch).unwrap()) {
        match result {
            Ok(answer) => println!("  {q} → {} node(s)", answer.nodes.len()),
            Err(e) => println!("  {q} → error: {e}"),
        }
    }

    // Server-side counters, then a clean teardown.
    let stats = client.stats().unwrap();
    println!(
        "\nSTATS: {} request(s), {} error(s), p50 {} µs, plan cache {} hit(s)",
        stats["requests"], stats["errors"], stats["p50us"], stats["planhits"]
    );
    client.quit().unwrap();
    handle.shutdown();
    println!("server shut down cleanly");
}
