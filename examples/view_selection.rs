//! View selection is NP-hard (Theorem 4): the k-dimensional perfect
//! matching reduction, run in both directions.
//!
//! Hyperedges become views over a chain query; a pairwise c-independent
//! subset of views rewriting the query corresponds exactly to a perfect
//! matching. This example shows the gadget, the search, and the blow-up.
//!
//! ```sh
//! cargo run --release --example view_selection
//! ```

use prxview::engine::{Engine, PlanPreference, QueryOptions};
use prxview::rewrite::hardness::*;
use prxview::rewrite::tpi_rewrite::find_c_independent_cover;
use prxview::rewrite::View;
use std::time::Instant;

fn main() {
    // A small 2-uniform hypergraph with a perfect matching.
    let edges = vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![1, 4], vec![1, 3]];
    let s = 4;
    let (q, views) = hypergraph_instance(s, &edges);
    println!("query: {q}");
    for (i, v) in views.iter().enumerate() {
        println!("view v{i} (edge {:?}): {v}", edges[i]);
    }

    let t0 = Instant::now();
    match find_c_independent_cover(&q, &views, 10_000) {
        Some(cover) => {
            println!("\nc-independent rewriting found in {:?}:", t0.elapsed());
            for &i in &cover {
                println!("  uses v{i} = edge {:?}", edges[i]);
            }
            assert!(matching_direct(s, &edges));
        }
        None => println!("\nno c-independent rewriting (no perfect matching)"),
    }

    // A negative instance: {1,2} and {2,3} cannot cover {1,2,3} disjointly.
    let bad_edges = vec![vec![1, 2], vec![2, 3]];
    let (q2, views2) = hypergraph_instance(3, &bad_edges);
    assert!(find_c_independent_cover(&q2, &views2, 10_000).is_none());
    assert!(!matching_direct(3, &bad_edges));
    println!("negative instance correctly rejected ✓");

    // Growth of the exhaustive search with the number of views.
    println!("\nexhaustive search cost growth (3-uniform, random instances):");
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(11);
    for m in [4usize, 6, 8, 10, 12] {
        let s = 6;
        let edges = random_hypergraph(s, 3, m, &mut rng);
        let (q, views) = hypergraph_instance(s, &edges);
        let t = Instant::now();
        let found = find_c_independent_cover(&q, &views, 10_000).is_some();
        println!(
            "  |E| = {m:2}: {:>10?}  (matching: {found}, agrees with direct: {})",
            t.elapsed(),
            found == matching_direct(s, &edges)
        );
    }

    // The engine's typed planner on the first instance: same views through
    // the catalog, TP∩ shape forced, with a typed verdict either way.
    let (q, patterns) = hypergraph_instance(s, &edges);
    let mut engine = Engine::new();
    engine
        .register_views(
            patterns
                .iter()
                .enumerate()
                .map(|(i, v)| View::new(format!("v{i}"), v.clone())),
        )
        .expect("unique names");
    let tpi_only = QueryOptions::new().plan_preference(PlanPreference::TpiOnly);
    println!("\nengine TP∩ planner on the gadget:");
    match engine.plan_with(&q, &tpi_only) {
        Ok(plan) => println!("  {}", plan.describe(engine.catalog().views())),
        Err(e) => println!("  {e}"),
    }
}
